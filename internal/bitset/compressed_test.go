package bitset

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// oracleCap bounds the ID space of the property tests: a bit over three
// chunks so every test crosses chunk boundaries and exercises mixed
// container kinds.
const oracleCap = 3*chunkBits + 1000

// idSpace is a reproducible random ID sample: skewed so some chunks go
// dense (bitmap), some stay sparse (array), and some cluster into runs.
func randomIDs(r *rand.Rand) []int32 {
	var ids []int32
	// Sparse tail across the whole space.
	for i, n := 0, r.Intn(500); i < n; i++ {
		ids = append(ids, int32(r.Intn(oracleCap)))
	}
	// A dense region inside chunk 1 to force a bitmap container.
	if r.Intn(2) == 0 {
		base := chunkBits + r.Intn(chunkBits/2)
		for i, n := 0, 5000+r.Intn(3000); i < n; i++ {
			ids = append(ids, int32(base+r.Intn(chunkBits/2))%oracleCap)
		}
	}
	// Contiguous runs straddling the chunk-2 boundary.
	if r.Intn(2) == 0 {
		start := 2*chunkBits - r.Intn(200) - 1
		for i, n := 0, r.Intn(400)+1; i < n; i++ {
			ids = append(ids, int32(start+i))
		}
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}

// buildPair constructs the dense oracle and the compressed set from the
// same sorted ID list.
func buildPair(ids []int32) (*Set, *Compressed) {
	d := New(oracleCap)
	d.SetIDs(ids)
	c := FromSortedIDs(ids)
	return d, c
}

// agree fails the test if the compressed set and the dense oracle differ in
// membership, count, or iteration order.
func agree(t *testing.T, label string, d *Set, c *Compressed) {
	t.Helper()
	if err := c.validate(); err != nil {
		t.Fatalf("%s: invalid compressed set: %v", label, err)
	}
	if d.Count() != c.Count() {
		t.Fatalf("%s: count dense=%d compressed=%d", label, d.Count(), c.Count())
	}
	want := d.IDs(nil)
	got := c.IDs(nil)
	if !slices.Equal(want, got) {
		t.Fatalf("%s: ID streams differ (dense %d IDs, compressed %d IDs)", label, len(want), len(got))
	}
}

func TestCompressedQuickAgainstDenseOracle(t *testing.T) {
	// testing/quick drives the seed; each iteration builds two random sets
	// and checks construction, membership, and every binary op against the
	// dense oracle.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		aIDs, bIDs := randomIDs(r), randomIDs(r)
		da, ca := buildPair(aIDs)
		db, cb := buildPair(bIDs)
		agree(t, "build a", da, ca)
		agree(t, "build b", db, cb)

		// Membership probes, including guaranteed members.
		for i := 0; i < 200; i++ {
			id := r.Intn(oracleCap)
			if da.Test(id) != ca.Contains(id) {
				t.Errorf("seed %d: Contains(%d) mismatch", seed, id)
				return false
			}
		}
		for _, id := range aIDs {
			if !ca.Contains(int(id)) {
				t.Errorf("seed %d: member %d missing", seed, id)
				return false
			}
		}

		// Non-mutating counts.
		if got, want := ca.OrCount(cb), da.OrCount(db); got != want {
			t.Errorf("seed %d: OrCount=%d want %d", seed, got, want)
			return false
		}
		if got, want := ca.AndCount(cb), da.AndCount(db); got != want {
			t.Errorf("seed %d: AndCount=%d want %d", seed, got, want)
			return false
		}
		if got, want := ca.AndNotCount(cb), da.AndNotCount(db); got != want {
			t.Errorf("seed %d: AndNotCount=%d want %d", seed, got, want)
			return false
		}

		// Mutating ops on clones, with run-optimized variants of the same
		// operands so the run-container code paths get the same scrutiny.
		for _, optimized := range []bool{false, true} {
			opA, opB := ca.Clone(), cb.Clone()
			if optimized {
				opA.RunOptimize()
				opB.RunOptimize()
			}
			u, uo := da.Clone(), opA.Clone()
			uo.Or(opB)
			u.Or(db)
			agree(t, "or", u, uo)

			x, xo := da.Clone(), opA.Clone()
			xo.And(opB)
			x.And(db)
			agree(t, "and", x, xo)

			n, no := da.Clone(), opA.Clone()
			no.AndNot(opB)
			n.AndNot(db)
			agree(t, "andnot", n, no)

			plain := ca.Clone()
			plain.Or(cb)
			if !uo.Equal(plain) {
				t.Errorf("seed %d: optimized and plain unions not Equal", seed)
				return false
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedAddMatchesFromSorted(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ids := randomIDs(r)
	fromSorted := FromSortedIDs(ids)
	incremental := NewCompressed()
	// Insert in shuffled order; Add must converge to the same set.
	shuffled := slices.Clone(ids)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for _, id := range shuffled {
		incremental.Add(int(id))
	}
	if !fromSorted.Equal(incremental) {
		t.Fatal("incremental Add and FromSortedIDs disagree")
	}
	if err := incremental.validate(); err != nil {
		t.Fatal(err)
	}
}

// TestContainerTransitionBoundaries pins the adaptive re-encoding edges:
// array→bitmap exactly past 4096 cardinality, bitmap→array when an
// intersection shrinks below it, and run encoding at chunk edges
// 65535/65536.
func TestContainerTransitionBoundaries(t *testing.T) {
	// Fill one chunk to exactly arrayMaxCard via Add: must stay an array.
	c := NewCompressed()
	for i := 0; i < arrayMaxCard; i++ {
		c.Add(i * 2) // spaced: no run compression temptation
	}
	if got := c.cons[0].kind; got != arrayKind {
		t.Fatalf("at card %d: kind=%d want array", arrayMaxCard, got)
	}
	// One more bit crosses the boundary: must convert to bitmap.
	c.Add(arrayMaxCard * 2)
	if got := c.cons[0].kind; got != bitmapKind {
		t.Fatalf("at card %d: kind=%d want bitmap", arrayMaxCard+1, got)
	}
	if c.Count() != arrayMaxCard+1 {
		t.Fatalf("count=%d want %d", c.Count(), arrayMaxCard+1)
	}

	// Intersecting the bitmap chunk with a small array must shrink the
	// result back to an array container.
	small := NewCompressed()
	small.Add(0)
	small.Add(2)
	small.Add(3) // not a member of c
	c.And(small)
	if got := c.cons[0].kind; got != arrayKind {
		t.Fatalf("after shrink: kind=%d want array", got)
	}
	if got := c.IDs(nil); !slices.Equal(got, []int32{0, 2}) {
		t.Fatalf("after shrink: IDs=%v", got)
	}

	// A contiguous range spanning the chunk edge 65535→65536 must split
	// into two containers and round-trip exactly.
	var ids []int32
	for i := chunkBits - 10; i < chunkBits+10; i++ {
		ids = append(ids, int32(i))
	}
	edge := FromSortedIDs(ids)
	if len(edge.cons) != 2 {
		t.Fatalf("edge set has %d chunks, want 2", len(edge.cons))
	}
	if !edge.Contains(chunkBits-1) || !edge.Contains(chunkBits) {
		t.Fatal("edge bits 65535/65536 missing")
	}
	edge.RunOptimize()
	for i, con := range edge.cons {
		if con.kind != runKind {
			t.Fatalf("edge chunk %d: kind=%d want run after RunOptimize", i, con.kind)
		}
	}
	if got := edge.IDs(nil); !slices.Equal(got, ids) {
		t.Fatalf("edge IDs after RunOptimize: %v", got)
	}

	// A full chunk (all 65536 bits) must encode as a single run and
	// operations on it must stay correct.
	full := make([]int32, chunkBits)
	for i := range full {
		full[i] = int32(i)
	}
	fc := FromSortedIDs(full)
	fc.RunOptimize()
	if fc.cons[0].kind != runKind || len(fc.cons[0].runs) != 1 {
		t.Fatalf("full chunk: kind=%d runs=%d", fc.cons[0].kind, len(fc.cons[0].runs))
	}
	if fc.Count() != chunkBits {
		t.Fatalf("full chunk count=%d", fc.Count())
	}
	probe := FromSortedIDs([]int32{0, 65535, 65536})
	if got := fc.AndCount(probe); got != 2 {
		t.Fatalf("full∩probe=%d want 2", got)
	}
	fc.AndNot(probe)
	if fc.Count() != chunkBits-2 || fc.Contains(0) || fc.Contains(65535) {
		t.Fatal("full\\probe wrong")
	}
	if err := fc.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedEqualAcrossEncodings(t *testing.T) {
	ids := make([]int32, 0, 6000)
	for i := 0; i < 6000; i++ {
		ids = append(ids, int32(i)) // one dense run: bitmap by cardinality
	}
	a := FromSortedIDs(ids) // FromSortedIDs optimizes: run encoding
	b := NewCompressed()    // incremental: bitmap encoding, never optimized
	for _, id := range ids {
		b.Add(int(id))
	}
	if a.cons[0].kind == b.cons[0].kind {
		t.Fatalf("want differing encodings, both kind=%d", a.cons[0].kind)
	}
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("semantically equal sets with different encodings not Equal")
	}
	b.Add(70000)
	if a.Equal(b) {
		t.Fatal("unequal sets reported Equal")
	}
}

func TestCompressedSizeBytesCompresses(t *testing.T) {
	// A clustered million-ID set must encode far below the dense
	// equivalent (one bit per ID of capacity).
	var ids []int32
	for base := 0; base < 1_000_000; base += 10_000 {
		for i := 0; i < 2_000; i++ {
			ids = append(ids, int32(base+i))
		}
	}
	c := FromSortedIDs(ids)
	c.RunOptimize()
	dense := 1_000_000 / 8
	if c.SizeBytes() >= dense/10 {
		t.Fatalf("SizeBytes=%d, want <%d (10%% of dense)", c.SizeBytes(), dense/10)
	}
	if c.Count() != len(ids) {
		t.Fatalf("count=%d want %d", c.Count(), len(ids))
	}
}

func BenchmarkCompressedOrCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := FromSortedIDs(randomIDs(r))
	y := FromSortedIDs(randomIDs(r))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.OrCount(y)
	}
}

func BenchmarkDenseOrCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, _ := buildPair(randomIDs(r))
	y, _ := buildPair(randomIDs(r))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.OrCount(y)
	}
}
