package bitset

import (
	"slices"
	"testing"
)

// fuzzCap covers three chunks so the op stream can exercise chunk edges
// (65535/65536) and mixed container kinds across chunks.
const fuzzCap = 3 * chunkBits

// decodeFuzzOps interprets data as 3-byte records: opcode (low 3 bits of
// byte 0), target chunk (next 2 bits), and a 16-bit in-chunk value. The
// encoding guarantees every record is meaningful — there is no way to
// produce an out-of-range ID — so the fuzzer spends its budget on container
// transitions, not input validation.
type fuzzOp struct {
	op int
	id int
}

func decodeFuzzOps(data []byte) []fuzzOp {
	ops := make([]fuzzOp, 0, len(data)/3)
	for i := 0; i+2 < len(data); i += 3 {
		op := int(data[i]) & 7
		chunk := (int(data[i]) >> 3) % 3
		v := int(data[i+1]) | int(data[i+2])<<8
		ops = append(ops, fuzzOp{op: op, id: chunk*chunkBits + v})
	}
	return ops
}

// FuzzCompressedContainers drives a compressed set and the dense oracle
// through the same operation stream and checks bit-identical state plus the
// structural container invariants after every step. The range op (7) sets
// 256 bits at once, so short inputs can push an array container across the
// 4096-cardinality boundary into bitmap form and back down via And/AndNot.
func FuzzCompressedContainers(f *testing.F) {
	// Array→bitmap crossing: 17 range ops = 4352 bits in chunk 0.
	var grow []byte
	for i := 0; i < 17; i++ {
		v := i * 256
		grow = append(grow, 7, byte(v), byte(v>>8))
	}
	f.Add(grow)
	// Chunk-edge straddle: a range starting at 65535-128 plus single adds
	// at the first bits of chunk 1, then a union.
	edge := chunkBits - 128
	f.Add([]byte{
		7, byte(edge & 0xff), byte(edge >> 8),
		1 | 1<<3, 0, 0,
		1 | 1<<3, 1, 0,
		2, 0, 0,
	})
	// Shrink transitions: grow, RunOptimize, intersect with a small aux.
	f.Add(append(slices.Clone(grow), []byte{
		5, 0, 0,
		1, 10, 0,
		1, 244, 1,
		3, 0, 0,
	}...))
	// Difference on the full-chunk edge value 65535.
	f.Add([]byte{
		0, 255, 255,
		1, 255, 255,
		4, 0, 0,
		6, 0, 0,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := New(fuzzCap)
		c := NewCompressed()
		dAux := New(fuzzCap)
		cAux := NewCompressed()

		for _, rec := range decodeFuzzOps(data) {
			switch rec.op {
			case 0:
				d.Set(rec.id)
				c.Add(rec.id)
			case 1:
				dAux.Set(rec.id)
				cAux.Add(rec.id)
			case 2:
				d.Or(dAux)
				c.Or(cAux)
			case 3:
				d.And(dAux)
				c.And(cAux)
			case 4:
				d.AndNot(dAux)
				c.AndNot(cAux)
			case 5:
				c.RunOptimize()
			case 6:
				if got, want := c.OrCount(cAux), d.OrCount(dAux); got != want {
					t.Fatalf("OrCount=%d want %d", got, want)
				}
				if got, want := c.AndCount(cAux), d.AndCount(dAux); got != want {
					t.Fatalf("AndCount=%d want %d", got, want)
				}
				if got, want := c.AndNotCount(cAux), d.AndNotCount(dAux); got != want {
					t.Fatalf("AndNotCount=%d want %d", got, want)
				}
			default: // 7: set a 256-bit range from id, clipped to capacity
				end := rec.id + 256
				if end > fuzzCap {
					end = fuzzCap
				}
				for i := rec.id; i < end; i++ {
					d.Set(i)
					c.Add(i)
				}
			}
			if err := c.validate(); err != nil {
				t.Fatalf("after op %d: %v", rec.op, err)
			}
			if err := cAux.validate(); err != nil {
				t.Fatalf("aux after op %d: %v", rec.op, err)
			}
		}

		final := func(label string, dd *Set, cc *Compressed) {
			if dd.Count() != cc.Count() {
				t.Fatalf("%s: count dense=%d compressed=%d", label, dd.Count(), cc.Count())
			}
			if !slices.Equal(dd.IDs(nil), cc.IDs(nil)) {
				t.Fatalf("%s: ID streams differ", label)
			}
			// Round-trip through the canonical constructor must be Equal
			// regardless of how the op stream left the containers encoded.
			rt := FromSortedIDs(cc.IDs(nil))
			if !rt.Equal(cc) || !cc.Equal(rt) {
				t.Fatalf("%s: round-trip not Equal", label)
			}
		}
		final("main", d, c)
		final("aux", dAux, cAux)
	})
}
