// Package bitset implements a dense, fixed-capacity bitset over uint64 words.
//
// The coverage machinery uses bitsets to take unions of billboard coverage
// sets when evaluating the influence I(S) of a deployment plan from scratch;
// one bit per trajectory. Incremental evaluation during search uses counting
// (package coverage) instead, but bitsets remain the fastest way to compute
// full-set influence, overlap statistics (Figure 1b) and test oracles.
package bitset

import "math/bits"

const wordBits = 64

// Set is a bitset with a fixed capacity established at construction. The
// zero value is an empty set of capacity 0.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for bits 0..n-1.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Cap returns the capacity in bits.
func (s *Set) Cap() int { return s.n }

// Set sets bit i. It panics if i is out of range.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set. It panics if i is out of range.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
}

// Count returns the number of set bits (population count).
func (s *Set) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Or sets s to the union s ∪ t. The sets must have equal capacity.
func (s *Set) Or(t *Set) {
	s.checkCompat(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// And sets s to the intersection s ∩ t. The sets must have equal capacity.
func (s *Set) And(t *Set) {
	s.checkCompat(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// AndNot sets s to the difference s \ t. The sets must have equal capacity.
func (s *Set) AndNot(t *Set) {
	s.checkCompat(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// OrCount returns |s ∪ t| without modifying either set.
func (s *Set) OrCount(t *Set) int {
	s.checkCompat(t)
	total := 0
	for i, w := range t.words {
		total += bits.OnesCount64(s.words[i] | w)
	}
	return total
}

// AndCount returns |s ∩ t| without modifying either set.
func (s *Set) AndCount(t *Set) int {
	s.checkCompat(t)
	total := 0
	for i, w := range t.words {
		total += bits.OnesCount64(s.words[i] & w)
	}
	return total
}

// AndNotCount returns |s \ t| (bits set in s but not t) without modifying
// either set. This is the marginal-coverage primitive: the number of
// trajectories a billboard with coverage s would add to a plan t.
func (s *Set) AndNotCount(t *Set) int {
	s.checkCompat(t)
	total := 0
	for i, w := range t.words {
		total += bits.OnesCount64(s.words[i] &^ w)
	}
	return total
}

// SetIDs sets every bit listed in ids.
func (s *Set) SetIDs(ids []int32) {
	for _, id := range ids {
		s.Set(int(id))
	}
}

// Range calls f for every set bit in ascending order; if f returns false the
// iteration stops.
func (s *Set) Range(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// IDs appends the indices of all set bits to dst in ascending order and
// returns the extended slice.
func (s *Set) IDs(dst []int32) []int32 {
	s.Range(func(i int) bool {
		dst = append(dst, int32(i))
		return true
	})
	return dst
}

// Equal reports whether s and t hold the same bits and capacity.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if t.words[i] != w {
			return false
		}
	}
	return true
}

func (s *Set) checkCompat(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
}
