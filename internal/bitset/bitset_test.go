package bitset

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSetClearTest(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Errorf("new set has bit %d", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Errorf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, f := range map[string]func(){
		"Set(-1)":   func() { s.Set(-1) },
		"Set(10)":   func() { s.Set(10) },
		"Test(10)":  func() { s.Test(10) },
		"Clear(10)": func() { s.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(20)
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched capacity did not panic")
		}
	}()
	a.Or(b)
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

// reference set ops on maps for property testing.
func toMap(ids []uint16, n int) map[int]bool {
	m := map[int]bool{}
	for _, id := range ids {
		m[int(id)%n] = true
	}
	return m
}

func fromMap(m map[int]bool, n int) *Set {
	s := New(n)
	for i := range m {
		s.Set(i)
	}
	return s
}

func TestSetOpsMatchMapModel(t *testing.T) {
	const n = 300
	check := func(aIDs, bIDs []uint16) bool {
		am, bm := toMap(aIDs, n), toMap(bIDs, n)
		a, b := fromMap(am, n), fromMap(bm, n)

		or := a.Clone()
		or.Or(b)
		and := a.Clone()
		and.And(b)
		diff := a.Clone()
		diff.AndNot(b)

		wantOr, wantAnd, wantDiff := 0, 0, 0
		for i := 0; i < n; i++ {
			inA, inB := am[i], bm[i]
			if inA || inB {
				wantOr++
				if or.Test(i) != true {
					return false
				}
			} else if or.Test(i) {
				return false
			}
			if inA && inB {
				wantAnd++
			}
			if inA && !inB {
				wantDiff++
			}
			if and.Test(i) != (inA && inB) || diff.Test(i) != (inA && !inB) {
				return false
			}
		}
		return or.Count() == wantOr &&
			and.Count() == wantAnd &&
			diff.Count() == wantDiff &&
			a.OrCount(b) == wantOr &&
			a.AndCount(b) == wantAnd &&
			a.AndNotCount(b) == wantDiff
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountOpsDoNotMutate(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	ac, bc := a.Clone(), b.Clone()
	_ = a.OrCount(b)
	_ = a.AndCount(b)
	_ = a.AndNotCount(b)
	if !a.Equal(ac) || !b.Equal(bc) {
		t.Fatal("count operations mutated operands")
	}
}

func TestRangeOrderAndStop(t *testing.T) {
	s := New(200)
	want := []int{0, 5, 63, 64, 120, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.Range(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order: got %v, want %v", got, want)
		}
	}
	count := 0
	s.Range(func(i int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("Range early stop visited %d, want 3", count)
	}
}

func TestIDsAndSetIDsRoundTrip(t *testing.T) {
	s := New(500)
	ids := []int32{0, 17, 64, 65, 300, 499}
	s.SetIDs(ids)
	got := s.IDs(nil)
	if len(got) != len(ids) {
		t.Fatalf("IDs length %d, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("IDs = %v, want %v", got, ids)
		}
	}
}

func TestResetAndEqual(t *testing.T) {
	a := New(100)
	a.Set(42)
	b := New(100)
	if a.Equal(b) {
		t.Error("sets with different bits reported equal")
	}
	a.Reset()
	if !a.Equal(b) {
		t.Error("reset set not equal to empty set")
	}
	if a.Equal(New(101)) {
		t.Error("sets with different capacity reported equal")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Set(1)
	b := a.Clone()
	b.Set(2)
	if a.Test(2) {
		t.Error("mutating clone affected original")
	}
	if !b.Test(1) {
		t.Error("clone lost original bit")
	}
}

func BenchmarkOrCount(b *testing.B) {
	r := rng.New(1)
	x, y := New(1<<20), New(1<<20)
	for i := 0; i < 50000; i++ {
		x.Set(r.Intn(1 << 20))
		y.Set(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.OrCount(y)
	}
}

func BenchmarkSetIDs(b *testing.B) {
	r := rng.New(1)
	ids := make([]int32, 10000)
	for i := range ids {
		ids[i] = int32(r.Intn(1 << 20))
	}
	s := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		s.SetIDs(ids)
	}
}
