package bitset

// This file implements Compressed, a roaring-style compressed bitmap: the
// ID space is split into fixed 2^16-bit chunks, and each non-empty chunk is
// stored in whichever of three container encodings is smallest for its
// contents:
//
//	array   sorted []uint16 of the set low bits; at most 4096 entries
//	        (beyond that the packed bitmap is smaller)
//	bitmap  1024 packed uint64 words (8 KiB, any cardinality)
//	run     sorted, non-overlapping, non-adjacent inclusive intervals;
//	        chosen when the chunk's bits cluster into few runs
//
// Binary operations pick a specialized routine per container-kind pair
// (array×array merges, bitmap×bitmap works on words, run operands walk
// their intervals), and results adaptively re-encode: an array that grows
// past 4096 becomes a bitmap, an intersection that shrinks a bitmap to
// ≤4096 bits becomes an array. The dense Set in this package remains the
// reference implementation; property tests and a fuzz target hold the two
// bit-identical over random operation sequences.
//
// Compressed is what lets the coverage layer hold paper-scale (millions of
// trajectories) billboard coverage and evaluate one-shot unions without a
// dense bit per trajectory: coverage IDs are spatially clustered, so most
// chunks are empty and the occupied ones compress well.

import (
	"fmt"
	"math/bits"
	"slices"
)

const (
	chunkBits = 1 << 16 // IDs per chunk
	chunkMask = chunkBits - 1
	// arrayMaxCard is the array-container capacity: past 4096 entries
	// (2 bytes each) the 8 KiB packed bitmap is the smaller encoding.
	arrayMaxCard = 4096
	bitmapWords  = chunkBits / 64
)

// Container kinds.
const (
	arrayKind uint8 = iota
	bitmapKind
	runKind
)

// interval is one inclusive run [start, last] of set bits within a chunk.
type interval struct {
	start, last uint16
}

// container holds one chunk's bits in exactly one of the three encodings.
// card is maintained for every kind so Count never rescans.
type container struct {
	kind   uint8
	card   int
	array  []uint16
	bitmap []uint64
	runs   []interval
}

// Compressed is a compressed set of non-negative int IDs. The zero value is
// an empty set. Unlike the dense Set it has no fixed capacity: any int32 ID
// is addressable, and memory is proportional to the encoded chunks.
type Compressed struct {
	keys []uint32     // chunk indices (id >> 16), sorted ascending
	cons []*container // parallel to keys
}

// NewCompressed returns an empty compressed set.
func NewCompressed() *Compressed { return &Compressed{} }

// FromSortedIDs builds a compressed set from ascending, duplicate-free IDs,
// choosing the smallest container encoding per chunk. It panics on negative
// IDs and on unsorted or duplicated input — the coverage layer's lists are
// already canonical, so a violation is a bug.
func FromSortedIDs(ids []int32) *Compressed {
	c := &Compressed{}
	for i := 0; i < len(ids); {
		if ids[i] < 0 {
			panic("bitset: FromSortedIDs: negative ID")
		}
		if i > 0 && ids[i] <= ids[i-1] {
			panic("bitset: FromSortedIDs: IDs unsorted or duplicated")
		}
		key := uint32(ids[i]) >> 16
		j := i + 1
		for j < len(ids) {
			if ids[j] <= ids[j-1] {
				panic("bitset: FromSortedIDs: IDs unsorted or duplicated")
			}
			if uint32(ids[j])>>16 != key {
				break
			}
			j++
		}
		con := containerFromSorted(ids[i:j])
		con.optimize()
		c.keys = append(c.keys, key)
		c.cons = append(c.cons, con)
		i = j
	}
	return c
}

// containerFromSorted encodes one chunk's ascending IDs (all sharing the
// same high 16 bits) as an array or bitmap by cardinality.
func containerFromSorted(ids []int32) *container {
	if len(ids) <= arrayMaxCard {
		arr := make([]uint16, len(ids))
		for i, id := range ids {
			arr[i] = uint16(id & chunkMask)
		}
		return &container{kind: arrayKind, card: len(ids), array: arr}
	}
	bm := make([]uint64, bitmapWords)
	for _, id := range ids {
		low := uint(id) & chunkMask
		bm[low>>6] |= 1 << (low & 63)
	}
	return &container{kind: bitmapKind, card: len(ids), bitmap: bm}
}

// findChunk returns the index of key in c.keys, or (insertion point, false).
func (c *Compressed) findChunk(key uint32) (int, bool) {
	return slices.BinarySearch(c.keys, key)
}

// Add sets bit id. It panics on negative IDs.
func (c *Compressed) Add(id int) {
	if id < 0 {
		panic("bitset: Add: negative ID")
	}
	key := uint32(id) >> 16
	low := uint16(id & chunkMask)
	i, ok := c.findChunk(key)
	if !ok {
		con := &container{kind: arrayKind, card: 1, array: []uint16{low}}
		c.keys = slices.Insert(c.keys, i, key)
		c.cons = slices.Insert(c.cons, i, con)
		return
	}
	c.cons[i].add(low)
}

// Contains reports whether bit id is set. Negative IDs are never members.
func (c *Compressed) Contains(id int) bool {
	if id < 0 {
		return false
	}
	i, ok := c.findChunk(uint32(id) >> 16)
	return ok && c.cons[i].contains(uint16(id&chunkMask))
}

// Count returns the number of set bits. O(number of chunks).
func (c *Compressed) Count() int {
	total := 0
	for _, con := range c.cons {
		total += con.card
	}
	return total
}

// IsEmpty reports whether no bits are set.
func (c *Compressed) IsEmpty() bool { return c.Count() == 0 }

// Clone returns an independent copy.
func (c *Compressed) Clone() *Compressed {
	n := &Compressed{
		keys: slices.Clone(c.keys),
		cons: make([]*container, len(c.cons)),
	}
	for i, con := range c.cons {
		n.cons[i] = con.clone()
	}
	return n
}

// Range calls f for every set bit in ascending order; if f returns false
// the iteration stops.
func (c *Compressed) Range(f func(id int) bool) {
	for i, key := range c.keys {
		base := int(key) << 16
		if !c.cons[i].rangeBits(base, f) {
			return
		}
	}
}

// IDs appends all set bits to dst in ascending order and returns the
// extended slice.
func (c *Compressed) IDs(dst []int32) []int32 {
	c.Range(func(id int) bool {
		dst = append(dst, int32(id))
		return true
	})
	return dst
}

// Equal reports whether s and t contain exactly the same bits, regardless
// of how each chunk happens to be encoded.
func (c *Compressed) Equal(t *Compressed) bool {
	// Chunk key lists can differ only by empty containers, which no
	// operation leaves behind; still, compare semantically via cardinality
	// and membership so representation can never leak into equality.
	if c.Count() != t.Count() {
		return false
	}
	ci, ti := 0, 0
	for ci < len(c.cons) && ti < len(t.cons) {
		// Skip empty containers (defensive; operations prune them).
		if c.cons[ci].card == 0 {
			ci++
			continue
		}
		if t.cons[ti].card == 0 {
			ti++
			continue
		}
		if c.keys[ci] != t.keys[ti] || c.cons[ci].card != t.cons[ti].card {
			return false
		}
		if !containerSubset(c.cons[ci], t.cons[ti]) {
			return false
		}
		ci++
		ti++
	}
	for ; ci < len(c.cons); ci++ {
		if c.cons[ci].card != 0 {
			return false
		}
	}
	for ; ti < len(t.cons); ti++ {
		if t.cons[ti].card != 0 {
			return false
		}
	}
	return true
}

// containerSubset reports whether every bit of a is in b; with equal
// cardinality this is equality.
func containerSubset(a, b *container) bool {
	ok := true
	a.rangeBits(0, func(id int) bool {
		if !b.contains(uint16(id)) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Or sets c to the union c ∪ t.
func (c *Compressed) Or(t *Compressed) {
	for ti, key := range t.keys {
		i, ok := c.findChunk(key)
		if !ok {
			c.keys = slices.Insert(c.keys, i, key)
			c.cons = slices.Insert(c.cons, i, t.cons[ti].clone())
			continue
		}
		c.cons[i] = orContainers(c.cons[i], t.cons[ti])
	}
}

// And sets c to the intersection c ∩ t.
func (c *Compressed) And(t *Compressed) {
	outKeys := c.keys[:0]
	outCons := c.cons[:0]
	for i, key := range c.keys {
		ti, ok := t.findChunk(key)
		if !ok {
			continue
		}
		con := andContainers(c.cons[i], t.cons[ti])
		if con.card == 0 {
			continue
		}
		outKeys = append(outKeys, key)
		outCons = append(outCons, con)
	}
	c.keys = outKeys
	c.cons = outCons
}

// AndNot sets c to the difference c \ t.
func (c *Compressed) AndNot(t *Compressed) {
	outKeys := c.keys[:0]
	outCons := c.cons[:0]
	for i, key := range c.keys {
		con := c.cons[i]
		if ti, ok := t.findChunk(key); ok {
			con = andNotContainers(con, t.cons[ti])
		}
		if con.card == 0 {
			continue
		}
		outKeys = append(outKeys, key)
		outCons = append(outCons, con)
	}
	c.keys = outKeys
	c.cons = outCons
}

// OrCount returns |c ∪ t| without modifying either set.
func (c *Compressed) OrCount(t *Compressed) int {
	// |c ∪ t| = |c| + |t| − |c ∩ t|, and intersection counting never
	// materializes a result container.
	return c.Count() + t.Count() - c.AndCount(t)
}

// AndCount returns |c ∩ t| without modifying either set.
func (c *Compressed) AndCount(t *Compressed) int {
	total := 0
	for i, key := range c.keys {
		if ti, ok := t.findChunk(key); ok {
			total += andCardinality(c.cons[i], t.cons[ti])
		}
	}
	return total
}

// AndNotCount returns |c \ t| without modifying either set.
func (c *Compressed) AndNotCount(t *Compressed) int {
	return c.Count() - c.AndCount(t)
}

// RunOptimize re-encodes every container into its smallest form, including
// run encoding where the bits cluster into few intervals. Operations keep
// array/bitmap forms adaptively; call RunOptimize after bulk construction
// when the set will be held long-term.
func (c *Compressed) RunOptimize() {
	for _, con := range c.cons {
		con.optimize()
	}
}

// SizeBytes returns the approximate heap footprint of the encoded set, the
// number the bench harness reports as the substrate's resident size.
func (c *Compressed) SizeBytes() int {
	total := len(c.keys)*4 + len(c.cons)*8
	for _, con := range c.cons {
		total += 32 // container header
		total += len(con.array)*2 + len(con.bitmap)*8 + len(con.runs)*4
	}
	return total
}

// validate checks the structural invariants of every container; the fuzz
// harness calls it after each operation. It returns the first violation.
func (c *Compressed) validate() error {
	for i, key := range c.keys {
		if i > 0 && key <= c.keys[i-1] {
			return fmt.Errorf("bitset: chunk keys unsorted at %d", i)
		}
		if err := c.cons[i].validate(); err != nil {
			return fmt.Errorf("chunk %d: %w", key, err)
		}
	}
	return nil
}

// ---- container operations ----

func (con *container) clone() *container {
	return &container{
		kind:   con.kind,
		card:   con.card,
		array:  slices.Clone(con.array),
		bitmap: slices.Clone(con.bitmap),
		runs:   slices.Clone(con.runs),
	}
}

func (con *container) validate() error {
	switch con.kind {
	case arrayKind:
		if len(con.array) != con.card {
			return fmt.Errorf("array card %d, len %d", con.card, len(con.array))
		}
		if con.card > arrayMaxCard {
			return fmt.Errorf("array card %d exceeds %d", con.card, arrayMaxCard)
		}
		for i := 1; i < len(con.array); i++ {
			if con.array[i] <= con.array[i-1] {
				return fmt.Errorf("array unsorted at %d", i)
			}
		}
	case bitmapKind:
		if len(con.bitmap) != bitmapWords {
			return fmt.Errorf("bitmap has %d words", len(con.bitmap))
		}
		n := 0
		for _, w := range con.bitmap {
			n += bits.OnesCount64(w)
		}
		if n != con.card {
			return fmt.Errorf("bitmap card %d, popcount %d", con.card, n)
		}
	case runKind:
		n := 0
		for i, r := range con.runs {
			if r.last < r.start {
				return fmt.Errorf("run %d inverted", i)
			}
			if i > 0 && int(r.start) <= int(con.runs[i-1].last)+1 {
				return fmt.Errorf("run %d overlaps or touches predecessor", i)
			}
			n += int(r.last) - int(r.start) + 1
		}
		if n != con.card {
			return fmt.Errorf("run card %d, interval sum %d", con.card, n)
		}
	default:
		return fmt.Errorf("unknown kind %d", con.kind)
	}
	if con.card == 0 {
		return fmt.Errorf("empty container retained")
	}
	return nil
}

func (con *container) contains(low uint16) bool {
	switch con.kind {
	case arrayKind:
		_, ok := slices.BinarySearch(con.array, low)
		return ok
	case bitmapKind:
		return con.bitmap[low>>6]&(1<<(low&63)) != 0
	default:
		_, ok := slices.BinarySearchFunc(con.runs, low, func(r interval, v uint16) int {
			if r.last < v {
				return -1
			}
			if r.start > v {
				return 1
			}
			return 0
		})
		return ok
	}
}

// add sets one bit, re-encoding as needed (array past 4096 becomes a
// bitmap; run containers mutate by first lowering to array or bitmap).
func (con *container) add(low uint16) {
	switch con.kind {
	case arrayKind:
		i, ok := slices.BinarySearch(con.array, low)
		if ok {
			return
		}
		if con.card >= arrayMaxCard {
			con.toBitmap()
			con.add(low)
			return
		}
		con.array = slices.Insert(con.array, i, low)
		con.card++
	case bitmapKind:
		w, b := low>>6, uint64(1)<<(low&63)
		if con.bitmap[w]&b == 0 {
			con.bitmap[w] |= b
			con.card++
		}
	default:
		if con.contains(low) {
			return
		}
		con.lowerRuns()
		con.add(low)
	}
}

// toBitmap re-encodes an array or run container as a bitmap in place.
func (con *container) toBitmap() {
	bm := make([]uint64, bitmapWords)
	switch con.kind {
	case arrayKind:
		for _, v := range con.array {
			bm[v>>6] |= 1 << (v & 63)
		}
	case runKind:
		for _, r := range con.runs {
			setBitmapRange(bm, int(r.start), int(r.last))
		}
	}
	con.kind = bitmapKind
	con.bitmap = bm
	con.array = nil
	con.runs = nil
}

// toArray re-encodes a bitmap or run container as an array in place; the
// caller guarantees card ≤ arrayMaxCard.
func (con *container) toArray() {
	arr := make([]uint16, 0, con.card)
	switch con.kind {
	case bitmapKind:
		for wi, w := range con.bitmap {
			for w != 0 {
				arr = append(arr, uint16(wi<<6+bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	case runKind:
		for _, r := range con.runs {
			for v := int(r.start); v <= int(r.last); v++ {
				arr = append(arr, uint16(v))
			}
		}
	}
	con.kind = arrayKind
	con.array = arr
	con.bitmap = nil
	con.runs = nil
}

// lowerRuns re-encodes a run container into array or bitmap (by
// cardinality) so mutation paths only deal with two kinds.
func (con *container) lowerRuns() {
	if con.card <= arrayMaxCard {
		con.toArray()
	} else {
		con.toBitmap()
	}
}

// setBitmapRange sets bits [start, last] (inclusive) word-at-a-time.
func setBitmapRange(bm []uint64, start, last int) {
	sw, lw := start>>6, last>>6
	startMask := ^uint64(0) << (uint(start) & 63)
	lastMask := ^uint64(0) >> (63 - uint(last)&63)
	if sw == lw {
		bm[sw] |= startMask & lastMask
		return
	}
	bm[sw] |= startMask
	for w := sw + 1; w < lw; w++ {
		bm[w] = ^uint64(0)
	}
	bm[lw] |= lastMask
}

// numRuns counts the maximal runs of consecutive set bits.
func (con *container) numRuns() int {
	switch con.kind {
	case runKind:
		return len(con.runs)
	case arrayKind:
		n := 0
		for i, v := range con.array {
			if i == 0 || v != con.array[i-1]+1 {
				n++
			}
		}
		return n
	default:
		// Each run contributes one rising edge: a set bit whose
		// predecessor is clear. Count rising edges across word borders.
		n := 0
		var carry uint64 // MSB of the previous word
		for _, w := range con.bitmap {
			n += bits.OnesCount64(w &^ ((w << 1) | carry))
			carry = w >> 63
		}
		return n
	}
}

// runsFrom collects the container's bits as intervals.
func (con *container) runsFrom() []interval {
	var runs []interval
	open := false
	var start, prev uint16
	con.rangeBits(0, func(id int) bool {
		v := uint16(id)
		if !open {
			open, start, prev = true, v, v
			return true
		}
		if v == prev+1 {
			prev = v
			return true
		}
		runs = append(runs, interval{start: start, last: prev})
		start, prev = v, v
		return true
	})
	if open {
		runs = append(runs, interval{start: start, last: prev})
	}
	return runs
}

// optimize re-encodes the container into its smallest of the three forms.
// Sizes: array 2·card bytes, bitmap 8192 bytes, runs 4·numRuns bytes.
func (con *container) optimize() {
	runs := con.numRuns()
	runBytes := 4 * runs
	arrBytes := 2 * con.card
	if con.card > arrayMaxCard {
		arrBytes = 1 << 30 // array encoding unavailable
	}
	bmBytes := 8192
	switch {
	case runBytes < arrBytes && runBytes < bmBytes:
		if con.kind != runKind {
			rs := con.runsFrom()
			con.kind = runKind
			con.runs = rs
			con.array = nil
			con.bitmap = nil
		}
	case arrBytes <= bmBytes:
		if con.kind != arrayKind {
			con.toArray()
		}
	default:
		if con.kind != bitmapKind {
			con.toBitmap()
		}
	}
}

// rangeBits calls f(base + bit) for each set bit ascending; false stops and
// propagates.
func (con *container) rangeBits(base int, f func(int) bool) bool {
	switch con.kind {
	case arrayKind:
		for _, v := range con.array {
			if !f(base + int(v)) {
				return false
			}
		}
	case bitmapKind:
		for wi, w := range con.bitmap {
			for w != 0 {
				if !f(base + wi<<6 + bits.TrailingZeros64(w)) {
					return false
				}
				w &= w - 1
			}
		}
	default:
		for _, r := range con.runs {
			for v := int(r.start); v <= int(r.last); v++ {
				if !f(base + v) {
					return false
				}
			}
		}
	}
	return true
}

// ---- pairwise container operations ----
//
// Each operation dispatches on the (receiver kind, operand kind) pair. The
// hot pairs get dedicated merge loops; pairs involving run operands walk
// the interval list directly, so a run container never needs materializing
// just to be read.

// orContainers returns dst ∪ src, reusing dst's storage where possible
// (dst is owned by the receiving set; src is never modified).
func orContainers(dst, src *container) *container {
	switch {
	case dst.kind == bitmapKind && src.kind == bitmapKind:
		card := 0
		for i, w := range src.bitmap {
			dst.bitmap[i] |= w
			card += bits.OnesCount64(dst.bitmap[i])
		}
		dst.card = card
		return dst
	case dst.kind == bitmapKind && src.kind == arrayKind:
		for _, v := range src.array {
			w, b := v>>6, uint64(1)<<(v&63)
			if dst.bitmap[w]&b == 0 {
				dst.bitmap[w] |= b
				dst.card++
			}
		}
		return dst
	case dst.kind == bitmapKind && src.kind == runKind:
		for _, r := range src.runs {
			setBitmapRange(dst.bitmap, int(r.start), int(r.last))
		}
		card := 0
		for _, w := range dst.bitmap {
			card += bits.OnesCount64(w)
		}
		dst.card = card
		return dst
	case dst.kind == arrayKind && src.kind == arrayKind:
		merged := mergeUnion(dst.array, src.array)
		if len(merged) <= arrayMaxCard {
			dst.array = merged
			dst.card = len(merged)
			return dst
		}
		// Past the array capacity: re-encode the merged result as a bitmap.
		bm := make([]uint64, bitmapWords)
		for _, v := range merged {
			bm[v>>6] |= 1 << (v & 63)
		}
		return &container{kind: bitmapKind, card: len(merged), bitmap: bm}
	case dst.kind == runKind && src.kind == runKind:
		runs := mergeRunUnion(dst.runs, src.runs)
		card := 0
		for _, r := range runs {
			card += int(r.last) - int(r.start) + 1
		}
		dst.runs = runs
		dst.card = card
		return dst
	default:
		// Remaining mixed pairs (array∪run, run∪array, array∪bitmap,
		// run∪bitmap): lift the destination to a bitmap and retry with a
		// bitmap receiver, which handles every operand kind directly.
		dst.toBitmap()
		return orContainers(dst, src)
	}
}

// mergeUnion merges two sorted duplicate-free uint16 slices.
func mergeUnion(a, b []uint16) []uint16 {
	out := make([]uint16, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mergeRunUnion merges two sorted interval lists, coalescing overlaps and
// adjacency.
func mergeRunUnion(a, b []interval) []interval {
	out := make([]interval, 0, len(a)+len(b))
	i, j := 0, 0
	appendRun := func(r interval) {
		if n := len(out); n > 0 && int(r.start) <= int(out[n-1].last)+1 {
			if r.last > out[n-1].last {
				out[n-1].last = r.last
			}
			return
		}
		out = append(out, r)
	}
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i].start <= b[j].start):
			appendRun(a[i])
			i++
		default:
			appendRun(b[j])
			j++
		}
	}
	return out
}

// andContainers returns dst ∩ src as a fresh or reused container.
func andContainers(dst, src *container) *container {
	switch {
	case dst.kind == arrayKind:
		// Filter dst's array through src membership, cheapest for every
		// src kind (membership is O(log) or O(1)).
		out := dst.array[:0]
		for _, v := range dst.array {
			if src.contains(v) {
				out = append(out, v)
			}
		}
		dst.array = out
		dst.card = len(out)
		return dst
	case src.kind == arrayKind:
		// Result cardinality ≤ |src.array| ≤ 4096: build an array.
		out := make([]uint16, 0, min(dst.card, src.card))
		for _, v := range src.array {
			if dst.contains(v) {
				out = append(out, v)
			}
		}
		return &container{kind: arrayKind, card: len(out), array: out}
	case dst.kind == bitmapKind && src.kind == bitmapKind:
		card := 0
		for i, w := range src.bitmap {
			dst.bitmap[i] &= w
			card += bits.OnesCount64(dst.bitmap[i])
		}
		dst.card = card
		if card <= arrayMaxCard {
			dst.toArray()
		}
		return dst
	case dst.kind == bitmapKind && src.kind == runKind:
		// Keep only bits inside src's intervals: AND with the run mask.
		masked := make([]uint64, bitmapWords)
		for _, r := range src.runs {
			setBitmapRange(masked, int(r.start), int(r.last))
		}
		card := 0
		for i := range dst.bitmap {
			dst.bitmap[i] &= masked[i]
			card += bits.OnesCount64(dst.bitmap[i])
		}
		dst.card = card
		if card <= arrayMaxCard {
			dst.toArray()
		}
		return dst
	default:
		// dst is a run container with a bitmap or run operand: lower it
		// (runs are cheap to lower) and retry on the array/bitmap paths.
		dst.lowerRuns()
		return andContainers(dst, src)
	}
}

// andNotContainers returns dst \ src.
func andNotContainers(dst, src *container) *container {
	switch {
	case dst.kind == arrayKind:
		out := dst.array[:0]
		for _, v := range dst.array {
			if !src.contains(v) {
				out = append(out, v)
			}
		}
		dst.array = out
		dst.card = len(out)
		return dst
	case dst.kind == bitmapKind && src.kind == bitmapKind:
		card := 0
		for i, w := range src.bitmap {
			dst.bitmap[i] &^= w
			card += bits.OnesCount64(dst.bitmap[i])
		}
		dst.card = card
		if card <= arrayMaxCard {
			dst.toArray()
		}
		return dst
	case dst.kind == bitmapKind && src.kind == arrayKind:
		for _, v := range src.array {
			w, b := v>>6, uint64(1)<<(v&63)
			if dst.bitmap[w]&b != 0 {
				dst.bitmap[w] &^= b
				dst.card--
			}
		}
		if dst.card <= arrayMaxCard {
			dst.toArray()
		}
		return dst
	case dst.kind == bitmapKind && src.kind == runKind:
		for _, r := range src.runs {
			clearBitmapRange(dst.bitmap, int(r.start), int(r.last))
		}
		card := 0
		for _, w := range dst.bitmap {
			card += bits.OnesCount64(w)
		}
		dst.card = card
		if card <= arrayMaxCard {
			dst.toArray()
		}
		return dst
	default:
		dst.lowerRuns()
		return andNotContainers(dst, src)
	}
}

// clearBitmapRange clears bits [start, last] (inclusive) word-at-a-time.
func clearBitmapRange(bm []uint64, start, last int) {
	sw, lw := start>>6, last>>6
	startMask := ^uint64(0) << (uint(start) & 63)
	lastMask := ^uint64(0) >> (63 - uint(last)&63)
	if sw == lw {
		bm[sw] &^= startMask & lastMask
		return
	}
	bm[sw] &^= startMask
	for w := sw + 1; w < lw; w++ {
		bm[w] = 0
	}
	bm[lw] &^= lastMask
}

// andCardinality returns |a ∩ b| without materializing the intersection.
func andCardinality(a, b *container) int {
	// Order so the cheaper probe side drives the loop.
	switch {
	case a.kind == bitmapKind && b.kind == bitmapKind:
		n := 0
		for i, w := range a.bitmap {
			n += bits.OnesCount64(w & b.bitmap[i])
		}
		return n
	case a.kind == arrayKind:
		n := 0
		for _, v := range a.array {
			if b.contains(v) {
				n++
			}
		}
		return n
	case b.kind == arrayKind:
		return andCardinality(b, a)
	case a.kind == runKind && b.kind == bitmapKind:
		n := 0
		for _, r := range a.runs {
			n += popcountRange(b.bitmap, int(r.start), int(r.last))
		}
		return n
	case a.kind == bitmapKind && b.kind == runKind:
		return andCardinality(b, a)
	default: // run ∩ run: walk both interval lists.
		n := 0
		i, j := 0, 0
		for i < len(a.runs) && j < len(b.runs) {
			lo := max(a.runs[i].start, b.runs[j].start)
			hi := min(a.runs[i].last, b.runs[j].last)
			if lo <= hi {
				n += int(hi) - int(lo) + 1
			}
			if a.runs[i].last < b.runs[j].last {
				i++
			} else {
				j++
			}
		}
		return n
	}
}

// popcountRange counts set bits of bm within [start, last] inclusive.
func popcountRange(bm []uint64, start, last int) int {
	sw, lw := start>>6, last>>6
	startMask := ^uint64(0) << (uint(start) & 63)
	lastMask := ^uint64(0) >> (63 - uint(last)&63)
	if sw == lw {
		return bits.OnesCount64(bm[sw] & startMask & lastMask)
	}
	n := bits.OnesCount64(bm[sw] & startMask)
	for w := sw + 1; w < lw; w++ {
		n += bits.OnesCount64(bm[w])
	}
	return n + bits.OnesCount64(bm[lw]&lastMask)
}
