package mroam_test

import (
	"context"
	"testing"
	"time"

	mroam "repro"
)

// TestBLSDeadlineNYCScale is the serving-layer acceptance scenario: a BLS
// solve on the full synthetic NYC-scale instance (40k trips, 400
// billboards) under a 100ms deadline must come back quickly with a valid
// (disjoint, well-formed) truncated plan, and the same solve without a
// deadline must be bit-identical for every worker count.
func TestBLSDeadlineNYCScale(t *testing.T) {
	ds, err := mroam.GenerateNYC(42, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ds.BuildUniverse(mroam.DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	advs, err := mroam.GenerateMarket(u, mroam.MarketConfig{Alpha: mroam.DefaultAlpha, P: mroam.DefaultP}, 7)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := mroam.NewInstance(u, advs, mroam.DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := mroam.BLSCtx(ctx, inst, mroam.SearchOptions{Restarts: 10, Seed: 7})
	elapsed := time.Since(start)

	if !res.Truncated {
		t.Fatal("full-scale BLS finished 10 restarts inside 100ms — deadline never exercised")
	}
	if res.Plan == nil {
		t.Fatal("nil plan under deadline")
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatalf("deadline-bounded plan invalid: %v", err)
	}
	// Generous bound: the deadline plus the documented cancellation
	// latency, with slack for slow CI machines.
	if elapsed > 2*time.Second {
		t.Errorf("100ms-deadline solve took %v", elapsed)
	}

	// No deadline: worker count must not change the answer, and the ctx
	// entry point must match the blocking one bit for bit. Full-scale BLS
	// restarts cost tens of seconds each, so this half runs on a smaller
	// NYC instance (core's worker-invariance tests pin the same property
	// on random instances).
	small := nycInstance(t, 0.1)
	opts := mroam.SearchOptions{Restarts: 3, Seed: 7, Workers: 1}
	want := mroam.BLS(small, opts)
	for _, workers := range []int{2, 4} {
		opts.Workers = workers
		got := mroam.BLSCtx(context.Background(), small, opts)
		if got.Truncated {
			t.Fatalf("workers=%d: background-context solve reported truncated", workers)
		}
		if got.TotalRegret != want.TotalRegret() || got.Plan.Evals() != want.Evals() {
			t.Errorf("workers=%d: regret %v evals %d, want %v / %d",
				workers, got.TotalRegret, got.Plan.Evals(), want.TotalRegret(), want.Evals())
		}
	}
}

// nycInstance builds a synthetic NYC instance at the given scale with the
// paper's default market knobs.
func nycInstance(t *testing.T, scale float64) *mroam.Instance {
	t.Helper()
	ds, err := mroam.GenerateNYC(42, scale)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ds.BuildUniverse(mroam.DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	advs, err := mroam.GenerateMarket(u, mroam.MarketConfig{Alpha: mroam.DefaultAlpha, P: mroam.DefaultP}, 7)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := mroam.NewInstance(u, advs, mroam.DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}
