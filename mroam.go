// Package mroam is a from-scratch Go implementation of "Minimizing the
// Regret of an Influence Provider" (Zhang, Li, Bao, Zheng, Jagadish —
// SIGMOD 2021): the MROAM problem, in which an out-of-home advertising host
// assigns billboards to advertisers so as to minimize its total regret from
// unsatisfied demands and wasted (excessive) influence.
//
// The package is the public facade over the repository's internals. A
// typical session:
//
//	ds, _ := mroam.GenerateNYC(42, 0.25)             // synthetic taxi city
//	u, _ := ds.BuildUniverse(mroam.DefaultLambda)    // influence model, λ=100m
//	advs, _ := mroam.GenerateMarket(u, mroam.MarketConfig{Alpha: 1.0, P: 0.05}, 7)
//	inst, _ := mroam.NewInstance(u, advs, mroam.DefaultGamma)
//	plan := mroam.BLS(inst, mroam.SearchOptions{Restarts: 10, Seed: 7})
//	fmt.Println(plan.TotalRegret(), plan.SatisfiedCount())
//
// The four solvers of the paper are exposed as GOrder, GGlobal, ALS and
// BLS; Exact is a brute-force oracle for small instances. The experiment
// harness (NewExperiment) regenerates every table and figure of the paper's
// evaluation; see EXPERIMENTS.md.
package mroam

import (
	"context"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/influence"
	"repro/internal/market"
	"repro/internal/rng"
)

// Core problem types, re-exported from the internal implementation.
type (
	// Advertiser is one campaign proposal: demand I_i and payment L_i.
	Advertiser = core.Advertiser
	// Instance is one MROAM problem: universe + advertisers + γ.
	Instance = core.Instance
	// Plan is a (partial) assignment of billboards to advertisers.
	Plan = core.Plan
	// Algorithm is a named MROAM solver.
	Algorithm = core.Algorithm
	// SearchOptions configures the randomized local search framework.
	SearchOptions = core.LocalSearchOptions
	// Model is the pluggable regret-model seam: the per-advertiser
	// objective and feasibility semantics one problem variant carries
	// (DESIGN.md §15). Instance.Model returns the attached model;
	// Instance.WithModel swaps it.
	Model = core.Model
	// BaseModel is the paper's MROAM market, the default model.
	BaseModel = core.BaseModel
	// ZonalModel is the zonal-influence-constrained variant: the base
	// objective under per-zone caps on each advertiser's counted
	// influence supply.
	ZonalModel = core.ZonalModel
	// Universe is the billboard-to-trajectory coverage structure
	// consumed by instances.
	Universe = coverage.Universe
	// CoverageList is one billboard's sorted trajectory-ID list.
	CoverageList = coverage.List
	// Dataset bundles generated trajectories and billboards.
	Dataset = dataset.Dataset
	// DatasetConfig parameterizes the synthetic city generators.
	DatasetConfig = dataset.Config
	// MarketConfig holds the α/p workload knobs of the paper's §7.1.3.
	MarketConfig = market.Config
)

// Paper default parameters (Table 6 bold entries).
const (
	// DefaultGamma is the default unsatisfied penalty ratio γ.
	DefaultGamma = market.DefaultGamma
	// DefaultLambda is the default influence radius λ in meters.
	DefaultLambda = float64(market.DefaultLambda)
	// DefaultAlpha is the default demand-supply ratio α.
	DefaultAlpha = market.DefaultAlpha
	// DefaultP is the default average-individual demand ratio p.
	DefaultP = market.DefaultP
)

// Unassigned is Plan.Owner's value for a billboard not assigned to any
// advertiser.
const Unassigned = core.Unassigned

// NewInstance validates and constructs an MROAM instance over a coverage
// universe with the given advertisers and unsatisfied penalty ratio γ.
func NewInstance(u *Universe, advertisers []Advertiser, gamma float64) (*Instance, error) {
	return core.NewInstance(u, advertisers, gamma)
}

// NewUniverse builds a coverage universe directly from per-billboard
// trajectory-ID lists — the entry point for applying the solvers to
// non-geographic resource-provisioning problems (trucks, store locations,
// telecom towers; see the paper's General Applicability discussion and
// examples/telecom).
func NewUniverse(numTrajectories int, lists []CoverageList) (*Universe, error) {
	return coverage.NewUniverse(numTrajectories, lists)
}

// NewPlan returns the empty deployment plan for an instance; use it to
// build plans by hand (Plan.Assign/Release) or as input to the solvers'
// building blocks.
func NewPlan(inst *Instance) *Plan { return core.NewPlan(inst) }

// NewZonalModel builds the zonal-constraint model over a billboard→zone
// partition (zoneOf indexed by billboard ID) with a uniform per-zone cap on
// each advertiser's counted influence supply. Attach it to an instance with
// Instance.WithModel; catalog-built zonal instances do this automatically.
func NewZonalModel(zoneOf []int, cap int64) (*ZonalModel, error) {
	return core.NewZonalModel(zoneOf, cap)
}

// GOrder runs the budget-effective greedy (paper Algorithm 1, "G-Order").
func GOrder(inst *Instance) *Plan { return core.GreedyOrder(inst) }

// GGlobal runs the synchronous greedy (paper Algorithm 2, "G-Global").
func GGlobal(inst *Instance) *Plan { return core.GGlobal(inst) }

// ALS runs the randomized local search framework with the advertiser-driven
// neighborhood (paper Algorithms 3+4).
func ALS(inst *Instance, opts SearchOptions) *Plan {
	opts.Search = core.AdvertiserDriven
	return core.RandomizedLocalSearch(inst, opts)
}

// BLS runs the randomized local search framework with the billboard-driven
// neighborhood (paper Algorithms 3+5), the paper's strongest method.
func BLS(inst *Instance, opts SearchOptions) *Plan {
	opts.Search = core.BillboardDriven
	return core.RandomizedLocalSearch(inst, opts)
}

// Exact computes the optimal plan by exhaustive search; it errors on
// instances beyond a small size bound (MROAM is NP-hard — Exact exists as
// a ground-truth oracle).
func Exact(inst *Instance) (*Plan, error) { return core.Exact(inst) }

// Anytime solving — every solver can run under a context.Context and, when
// the deadline fires or the context is cancelled mid-solve, still returns
// the best complete plan found so far (see DESIGN.md §8 for the contract).
type (
	// Anytime is the result of a context-aware solve: best plan found,
	// restarts completed, and whether the run was truncated.
	Anytime = core.Anytime
	// AnytimeAlgorithm is an Algorithm supporting cancellable solves; all
	// four paper algorithms implement it.
	AnytimeAlgorithm = core.AnytimeAlgorithm
)

// SolveAnytime runs any Algorithm under ctx, falling back to a blocking
// solve for algorithms without anytime support.
func SolveAnytime(ctx context.Context, alg Algorithm, inst *Instance) *Anytime {
	return core.SolveAnytime(ctx, alg, inst)
}

// ALSCtx is ALS under a context: cancellable and deadline-bounded, with
// deterministic truncation at restart granularity. With a context that
// never fires it is bit-identical to ALS.
func ALSCtx(ctx context.Context, inst *Instance, opts SearchOptions) *Anytime {
	opts.Search = core.AdvertiserDriven
	return core.RandomizedLocalSearchCtx(ctx, inst, opts)
}

// BLSCtx is BLS under a context: cancellable and deadline-bounded, with
// deterministic truncation at restart granularity. With a context that
// never fires it is bit-identical to BLS.
func BLSCtx(ctx context.Context, inst *Instance, opts SearchOptions) *Anytime {
	opts.Search = core.BillboardDriven
	return core.RandomizedLocalSearchCtx(ctx, inst, opts)
}

// GOrderCtx is GOrder under a context; on cancellation the partially built
// plan is returned with Truncated set.
func GOrderCtx(ctx context.Context, inst *Instance) *Anytime {
	return core.GOrderAlgorithm{}.SolveCtx(ctx, inst)
}

// GGlobalCtx is GGlobal under a context; on cancellation the partially
// built plan is returned with Truncated set.
func GGlobalCtx(ctx context.Context, inst *Instance) *Anytime {
	return core.GGlobalAlgorithm{}.SolveCtx(ctx, inst)
}

// Algorithms returns the paper's four methods (G-Order, G-Global, ALS,
// BLS) in the evaluation's presentation order.
func Algorithms(seed uint64, restarts int) []Algorithm {
	return core.PaperAlgorithms(seed, restarts)
}

// AlgorithmsOpts is Algorithms with full control over the local search
// options — most usefully SearchOptions.Workers, which fans the restart
// loop of ALS and BLS out over a goroutine pool while returning results
// bit-identical to the serial run.
func AlgorithmsOpts(opts SearchOptions) []Algorithm {
	return core.PaperAlgorithmsOpts(opts)
}

// GenerateNYC generates the synthetic Manhattan-like taxi dataset at the
// given fraction of the default scale (1.0 = 40k trips, 400 billboards).
func GenerateNYC(seed uint64, scale float64) (*Dataset, error) {
	return catalog.BuildDataset(catalog.Spec{City: "NYC", Scale: scale, Seed: seed})
}

// GenerateSG generates the synthetic Singapore-like bus dataset at the
// given fraction of the default scale (1.0 = 55k trips, 1152 bus-stop
// billboards).
func GenerateSG(seed uint64, scale float64) (*Dataset, error) {
	return catalog.BuildDataset(catalog.Spec{City: "SG", Scale: scale, Seed: seed})
}

// LoadDataset reads a dataset directory previously written by
// Dataset.Save.
func LoadDataset(dir string) (*Dataset, error) {
	return catalog.BuildDataset(catalog.Spec{Data: dir})
}

// BuildCoverage runs the influence model (§7.1.2) over arbitrary
// trajectory and billboard databases: billboard o covers trajectory t iff
// some point of t is within lambda meters of o. Dataset.BuildUniverse is
// the one-call variant for generated datasets.
var BuildCoverage = influence.BuildCoverage

// GenerateMarket generates an advertiser set from the α/p workload knobs
// (§7.1.3) over the universe, deterministically in seed.
func GenerateMarket(u *Universe, cfg MarketConfig, seed uint64) ([]Advertiser, error) {
	return market.Generate(u, cfg, rng.New(seed))
}

// Experiment harness types, re-exported for the benchmark suite and CLI.
type (
	// ExperimentConfig tunes the evaluation harness.
	ExperimentConfig = experiment.Config
	// Experiment regenerates the paper's tables and figures.
	Experiment = experiment.Runner
	// FigureResult is one rendered figure's data.
	FigureResult = experiment.Figure
	// RunMetrics is the outcome of one algorithm on one instance.
	RunMetrics = experiment.Metrics
)

// NewExperiment returns the evaluation harness that regenerates the
// paper's tables and figures (see EXPERIMENTS.md and bench_test.go).
func NewExperiment(cfg ExperimentConfig) *Experiment {
	return experiment.NewRunner(cfg)
}
