package mroam_test

import (
	"fmt"

	mroam "repro"
)

// The paper's worked example (Tables 1-4): six billboards with influences
// {2, 6, 3, 7, 1, 1} over disjoint audiences and three advertisers. The
// zero-regret deployment exists and BLS finds it.
func Example() {
	influences := []int{2, 6, 3, 7, 1, 1}
	lists := make([]mroam.CoverageList, len(influences))
	next := int32(0)
	for i, n := range influences {
		for j := 0; j < n; j++ {
			lists[i] = append(lists[i], next)
			next++
		}
	}
	u, err := mroam.NewUniverse(int(next), lists)
	if err != nil {
		panic(err)
	}
	inst, err := mroam.NewInstance(u, []mroam.Advertiser{
		{Demand: 5, Payment: 10},
		{Demand: 7, Payment: 11},
		{Demand: 8, Payment: 20},
	}, mroam.DefaultGamma)
	if err != nil {
		panic(err)
	}
	plan := mroam.BLS(inst, mroam.SearchOptions{Restarts: 5, Seed: 1})
	fmt.Printf("regret %.0f, satisfied %d/3\n", plan.TotalRegret(), plan.SatisfiedCount())
	// Output: regret 0, satisfied 3/3
}

// Direct universes make the solvers applicable to any resource-provisioning
// problem: here three server pools covering customer shards, leased to two
// tenants.
func ExampleNewUniverse() {
	u, err := mroam.NewUniverse(9, []mroam.CoverageList{
		{0, 1, 2},
		{3, 4, 5},
		{6, 7, 8},
	})
	if err != nil {
		panic(err)
	}
	inst, err := mroam.NewInstance(u, []mroam.Advertiser{
		{Demand: 6, Payment: 60},
		{Demand: 3, Payment: 30},
	}, mroam.DefaultGamma)
	if err != nil {
		panic(err)
	}
	plan := mroam.GGlobal(inst)
	fmt.Printf("tenant 0: %d shards, tenant 1: %d shards\n",
		plan.Influence(0), plan.Influence(1))
	// Output: tenant 0: 6 shards, tenant 1: 3 shards
}

// The regret model of Equation 1, evaluated directly through the model
// seam: Instance.Model returns the variant the instance carries (the base
// MROAM market unless WithModel attached another), and the model owns the
// objective.
func ExampleInstance_Model() {
	u, _ := mroam.NewUniverse(1, []mroam.CoverageList{{0}})
	inst, _ := mroam.NewInstance(u, []mroam.Advertiser{
		{Demand: 10, Payment: 100},
	}, 0.5)
	m := inst.Model()
	fmt.Println(m.Regret(inst, 0, 5))  // unsatisfied: 100·(1 − 0.5·5/10)
	fmt.Println(m.Regret(inst, 0, 10)) // exactly satisfied
	fmt.Println(m.Regret(inst, 0, 15)) // over-satisfied: 100·(15−10)/10
	// Output:
	// 75
	// 0
	// 50
}
