package mroam

import (
	"io"

	"repro/internal/core"
	"repro/internal/coverage"
)

// Plan persistence, host-facing audits and the impression-count influence
// extension, re-exported from the internal implementation.

// AuditRow summarizes one advertiser's outcome under a plan.
type AuditRow = core.AuditRow

// NewInstanceWithImpressions constructs an MROAM instance under the
// impression-count influence measure (Zhang et al., KDD 2019, which the
// paper cites as an orthogonal alternative to union coverage): a trajectory
// counts toward I(S_i) only after it meets at least k billboards of S_i.
// k = 1 is exactly NewInstance.
func NewInstanceWithImpressions(u *Universe, advertisers []Advertiser, gamma float64, k int) (*Instance, error) {
	return core.NewInstanceWithImpressions(u, advertisers, gamma, k)
}

// WritePlan serializes a plan's assignment as JSON, fingerprinting the
// instance (γ, impressions, demands, payments) so it cannot be replayed
// against a different problem.
func WritePlan(w io.Writer, p *Plan) error { return core.WritePlan(w, p) }

// ReadPlan deserializes a plan written by WritePlan and replays it against
// the instance, re-deriving influences and regrets.
func ReadPlan(r io.Reader, inst *Instance) (*Plan, error) { return core.ReadPlan(r, inst) }

// Audit produces per-advertiser outcome rows sorted by descending regret.
func Audit(p *Plan) []AuditRow { return core.Audit(p) }

// Revenue returns the payment the host collects under the plan: full L_i
// from satisfied advertisers, γ·L_i·I(S_i)/I_i from unsatisfied ones.
func Revenue(p *Plan) float64 { return core.Revenue(p) }

// CoverageCounter is the incremental influence evaluator underlying all
// solvers, exposed for users building custom heuristics on the same
// machinery.
type CoverageCounter = coverage.Counter

// NewCoverageCounter returns an empty incremental counter over the universe
// (union-coverage influence).
func NewCoverageCounter(u *Universe) *CoverageCounter { return coverage.NewCounter(u) }
