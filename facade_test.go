package mroam_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	mroam "repro"
)

// tinyInstance builds a small instance through the public API.
func tinyInstance(t *testing.T) *mroam.Instance {
	t.Helper()
	u, err := mroam.NewUniverse(12, []mroam.CoverageList{
		{0, 1, 2, 3},
		{4, 5, 6},
		{7, 8},
		{9, 10, 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := mroam.NewInstance(u, []mroam.Advertiser{
		{Demand: 4, Payment: 8},
		{Demand: 5, Payment: 10},
	}, mroam.DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestPlanPersistenceThroughFacade(t *testing.T) {
	inst := tinyInstance(t)
	plan := mroam.GGlobal(inst)
	var buf bytes.Buffer
	if err := mroam.WritePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"version"`) {
		t.Error("plan JSON missing version")
	}
	back, err := mroam.ReadPlan(&buf, inst)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalRegret() != plan.TotalRegret() {
		t.Fatal("plan round trip changed regret")
	}
}

func TestAuditAndRevenueThroughFacade(t *testing.T) {
	inst := tinyInstance(t)
	plan := mroam.BLS(inst, mroam.SearchOptions{Restarts: 2, Seed: 4})
	rows := mroam.Audit(plan)
	if len(rows) != 2 {
		t.Fatalf("%d audit rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Regret > rows[i-1].Regret {
			t.Fatal("audit not sorted by descending regret")
		}
	}
	rev := mroam.Revenue(plan)
	if rev < 0 || rev > inst.TotalPayment() {
		t.Fatalf("revenue %v outside [0, total payment]", rev)
	}
}

func TestImpressionsThroughFacade(t *testing.T) {
	u, err := mroam.NewUniverse(6, []mroam.CoverageList{
		{0, 1, 2, 3},
		{0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := mroam.NewInstanceWithImpressions(u, []mroam.Advertiser{
		{Demand: 3, Payment: 6},
	}, mroam.DefaultGamma, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan := mroam.GGlobal(inst)
	if plan.Influence(0) != 3 || plan.TotalRegret() != 0 {
		t.Fatalf("k=2 solve: influence %d regret %v", plan.Influence(0), plan.TotalRegret())
	}
}

func TestCoverageCounterThroughFacade(t *testing.T) {
	u, err := mroam.NewUniverse(5, []mroam.CoverageList{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	c := mroam.NewCoverageCounter(u)
	c.Add(0)
	if c.Gain(1) != 1 {
		t.Fatalf("Gain = %d, want 1", c.Gain(1))
	}
}

func TestSubuniverseThroughFacade(t *testing.T) {
	u, err := mroam.NewUniverse(4, []mroam.CoverageList{{0}, {1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := mroam.Subuniverse(u, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumBillboards() != 1 || sub.Degree(0) != 2 {
		t.Fatal("subuniverse wrong")
	}
}

func TestSimulateThroughFacade(t *testing.T) {
	ds, err := mroam.GenerateNYC(5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ds.BuildUniverse(mroam.DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mroam.SimulationConfig{
		Days:             5,
		ArrivalsPerDay:   2,
		ContractMinDays:  1,
		ContractMaxDays:  2,
		DemandFractionLo: 0.05,
		DemandFractionHi: 0.15,
		Gamma:            mroam.DefaultGamma,
		Seed:             5,
	}
	res, err := mroam.Simulate(u, mroam.Algorithms(5, 1)[1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != 5 {
		t.Fatalf("%d day reports", len(res.Days))
	}
	all, err := mroam.ComparePolicies(u, mroam.Algorithms(5, 1)[:2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("%d policy results", len(all))
	}
}

func TestHardnessThroughFacade(t *testing.T) {
	p, err := mroam.RandomN3DM(9, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := mroam.ReduceN3DM(p)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := mroam.Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalRegret() != 0 {
		t.Fatalf("YES instance optimum = %v", opt.TotalRegret())
	}
	m, err := mroam.ExtractMatching(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyMatching(m); err != nil {
		t.Fatal(err)
	}
}

func TestGOrderThroughFacade(t *testing.T) {
	inst := tinyInstance(t)
	plan := mroam.GOrder(inst)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(plan.TotalRegret()) {
		t.Fatal("NaN regret")
	}
}
