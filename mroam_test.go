package mroam_test

import (
	"math"
	"testing"

	mroam "repro"
)

// TestEndToEndNYC drives the full public API path: generate city → build
// influence universe → generate market → solve with all four methods →
// compare outcomes.
func TestEndToEndNYC(t *testing.T) {
	ds, err := mroam.GenerateNYC(42, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ds.BuildUniverse(mroam.DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	advs, err := mroam.GenerateMarket(u, mroam.MarketConfig{Alpha: 1.0, P: 0.10}, 7)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := mroam.NewInstance(u, advs, mroam.DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}

	gOrder := mroam.GOrder(inst)
	gGlobal := mroam.GGlobal(inst)
	opts := mroam.SearchOptions{Restarts: 2, Seed: 7}
	als := mroam.ALS(inst, opts)
	bls := mroam.BLS(inst, opts)

	for name, p := range map[string]*mroam.Plan{
		"G-Order": gOrder, "G-Global": gGlobal, "ALS": als, "BLS": bls,
	} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.TotalRegret() < 0 {
			t.Fatalf("%s: negative regret", name)
		}
	}
	if als.TotalRegret() > gGlobal.TotalRegret()+1e-6 {
		t.Errorf("ALS (%v) worse than G-Global (%v)", als.TotalRegret(), gGlobal.TotalRegret())
	}
	if bls.TotalRegret() > gGlobal.TotalRegret()+1e-6 {
		t.Errorf("BLS (%v) worse than G-Global (%v)", bls.TotalRegret(), gGlobal.TotalRegret())
	}
}

// TestEndToEndSG exercises the bus-mode generator through the facade.
func TestEndToEndSG(t *testing.T) {
	ds, err := mroam.GenerateSG(42, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ds.BuildUniverse(mroam.DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	advs, err := mroam.GenerateMarket(u, mroam.MarketConfig{Alpha: 0.8, P: 0.20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := mroam.NewInstance(u, advs, mroam.DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}
	plan := mroam.BLS(inst, mroam.SearchOptions{Restarts: 1, Seed: 1})
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestNonGeographicUniverse exercises the direct-universe entry point that
// the telecom example builds on: the solvers work on any coverage
// structure, not just billboards.
func TestNonGeographicUniverse(t *testing.T) {
	// Three towers covering customer blocks, two operators.
	u, err := mroam.NewUniverse(10, []mroam.CoverageList{
		{0, 1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := mroam.NewInstance(u, []mroam.Advertiser{
		{Demand: 4, Payment: 40},
		{Demand: 6, Payment: 55},
	}, mroam.DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}
	plan := mroam.BLS(inst, mroam.SearchOptions{Restarts: 2, Seed: 5})
	if plan.TotalRegret() != 0 {
		t.Fatalf("regret = %v, want 0 (perfect partition exists)", plan.TotalRegret())
	}
	opt, err := mroam.Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalRegret() != 0 {
		t.Fatal("Exact missed the zero-regret optimum")
	}
}

func TestAlgorithmsList(t *testing.T) {
	algs := mroam.Algorithms(1, 2)
	want := []string{"G-Order", "G-Global", "ALS", "BLS"}
	if len(algs) != 4 {
		t.Fatalf("%d algorithms", len(algs))
	}
	for i, a := range algs {
		if a.Name() != want[i] {
			t.Errorf("algorithm %d = %q, want %q", i, a.Name(), want[i])
		}
	}
}

func TestExperimentFacade(t *testing.T) {
	exp := mroam.NewExperiment(mroam.ExperimentConfig{Scale: 0.02, Seed: 1, Restarts: 1})
	rows, err := exp.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Table5 rows = %d", len(rows))
	}
	figs, err := exp.Figure(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || len(figs[0].Points) != 5 {
		t.Fatalf("Figure(4) shape wrong")
	}
	for _, pt := range figs[0].Points {
		for _, m := range pt.Metrics {
			if math.Abs(m.Excess+m.Unsatisfied-m.TotalRegret) > 1e-6 {
				t.Fatal("metrics breakdown inconsistent")
			}
		}
	}
}

func TestDatasetSaveLoadThroughFacade(t *testing.T) {
	ds, err := mroam.GenerateNYC(9, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := mroam.LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Trajectories.Len() != ds.Trajectories.Len() {
		t.Fatal("dataset round trip lost trajectories")
	}
}
