package mroam

import (
	"repro/internal/hardness"
	"repro/internal/rng"
	"repro/internal/simulate"
)

// Rolling-market simulation (the setting of the paper's introduction: new
// advertisers arrive every day) and the executable §4 hardness reduction,
// re-exported from the internal implementations.

type (
	// SimulationConfig parameterizes a rolling-market simulation.
	SimulationConfig = simulate.Config
	// SimulationResult aggregates a simulated horizon.
	SimulationResult = simulate.Result
	// DayReport is one simulated day's outcome.
	DayReport = simulate.DayReport
	// N3DM is a numerical 3-dimensional matching instance (§4).
	N3DM = hardness.N3DM
	// Triple is one matched N3DM triple.
	Triple = hardness.Triple
)

// Simulate runs a rolling market on the universe with the algorithm as the
// daily allocation policy: proposals arrive each day, contracts lock
// billboards for their duration, and payments follow Equation 1's business
// model (full on satisfaction, γ-scaled fraction otherwise).
func Simulate(u *Universe, alg Algorithm, cfg SimulationConfig) (*SimulationResult, error) {
	return simulate.Run(u, alg, cfg)
}

// ComparePolicies simulates the identical market (same arrival sequence)
// once per algorithm and returns the results keyed by algorithm name.
func ComparePolicies(u *Universe, algs []Algorithm, cfg SimulationConfig) (map[string]*SimulationResult, error) {
	return simulate.ComparePolicies(u, algs, cfg)
}

// Subuniverse restricts a universe to the given billboard subset (dense
// re-indexing in keep order); influences are preserved.
func Subuniverse(u *Universe, keep []int) (*Universe, error) {
	return u.Subuniverse(keep)
}

// RandomN3DM generates an N3DM instance guaranteed to have a perfect
// matching (elements in [1, maxVal]).
func RandomN3DM(seed uint64, n, maxVal int) (N3DM, error) {
	return hardness.RandomYes(rng.New(seed), n, maxVal)
}

// ReduceN3DM builds the paper's §4 reduction: an MROAM instance whose
// optimal regret is zero iff the N3DM instance has a perfect matching.
func ReduceN3DM(p N3DM) (*Instance, error) { return hardness.Reduce(p) }

// ExtractMatching interprets a zero-regret plan of a reduced instance as an
// N3DM matching (the executable "if" direction of Theorem 1).
func ExtractMatching(p N3DM, plan *Plan) ([]Triple, error) {
	return hardness.ExtractMatching(p, plan)
}
