// Benchmark harness regenerating every table and figure of the paper's
// evaluation (Section 7). Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableX/BenchmarkFigureX regenerates the corresponding
// artifact and reports the headline numbers via b.ReportMetric, so the
// bench output doubles as the reproduction record (EXPERIMENTS.md collects
// a full run). Scale note: benches run the synthetic datasets at
// benchScale of the default size — the paper's claims are about ratios
// (who wins and by how much), which are scale-stable; see DESIGN.md.
package mroam_test

import (
	"fmt"
	"sync"
	"testing"

	mroam "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/influence"
	"repro/internal/market"
	"repro/internal/rng"
)

const (
	benchScale    = 0.15
	benchSeed     = 2021 // the paper's year
	benchRestarts = 2
)

var (
	benchOnce   sync.Once
	benchShared *experiment.Runner
)

// benchRunner returns the process-wide harness, generating datasets and
// caching universes on first use so individual benches time only their own
// sweep.
func benchRunner() *experiment.Runner {
	benchOnce.Do(func() {
		benchShared = experiment.NewRunner(experiment.Config{
			Scale:    benchScale,
			Seed:     benchSeed,
			Restarts: benchRestarts,
		})
	})
	return benchShared
}

// warm forces dataset generation and universe construction outside the
// benchmark timer.
func warm(b *testing.B, cities []dataset.City, lambdas []float64) *experiment.Runner {
	b.Helper()
	r := benchRunner()
	for _, c := range cities {
		for _, l := range lambdas {
			if _, err := r.Universe(c, l); err != nil {
				b.Fatal(err)
			}
		}
	}
	return r
}

var bothCities = []dataset.City{dataset.NYC, dataset.SG}

// reportFigure pushes the per-method mean total regret (and the paper's
// headline ratios) into the benchmark output.
func reportFigure(b *testing.B, figs []experiment.Figure) {
	b.Helper()
	sums := map[string]float64{}
	n := 0
	for _, fig := range figs {
		for _, pt := range fig.Points {
			n++
			for _, m := range pt.Metrics {
				sums[m.Algorithm] += m.TotalRegret
			}
		}
	}
	if n == 0 {
		return
	}
	for alg, s := range sums {
		b.ReportMetric(s/float64(n), alg+"-regret")
	}
	if sums["BLS"] > 0 {
		b.ReportMetric(sums["G-Order"]/sums["BLS"], "GOrder/BLS")
		b.ReportMetric(sums["G-Global"]/sums["BLS"], "GGlobal/BLS")
	}
}

// BenchmarkTable5_DatasetStats regenerates Table 5 (dataset statistics).
func BenchmarkTable5_DatasetStats(b *testing.B) {
	r := warm(b, bothCities, []float64{market.DefaultLambda})
	b.ResetTimer()
	var rows []dataset.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].AvgDistanceKM, "NYC-avg-km")
	b.ReportMetric(rows[0].AvgTravelSec, "NYC-avg-sec")
	b.ReportMetric(rows[1].AvgDistanceKM, "SG-avg-km")
	b.ReportMetric(rows[1].AvgTravelSec, "SG-avg-sec")
}

// BenchmarkFigure1a_InfluenceDistribution regenerates Figure 1a (billboard
// influence distribution, both cities).
func BenchmarkFigure1a_InfluenceDistribution(b *testing.B) {
	r := warm(b, bothCities, []float64{market.DefaultLambda})
	b.ResetTimer()
	var series []experiment.DistributionSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = r.Figure1()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Median normalized influence: lower = heavier tail (NYC < SG).
	mid := len(series[0].InfluenceCurve) / 2
	b.ReportMetric(series[0].InfluenceCurve[mid], "NYC-median-norm-infl")
	b.ReportMetric(series[1].InfluenceCurve[mid], "SG-median-norm-infl")
}

// BenchmarkFigure1b_ImpressionCounts regenerates Figure 1b (impression
// count vs fraction of billboards selected).
func BenchmarkFigure1b_ImpressionCounts(b *testing.B) {
	r := warm(b, bothCities, []float64{market.DefaultLambda})
	b.ResetTimer()
	var series []experiment.DistributionSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = r.Figure1()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Coverage at 30% of billboards: SG's curve rises faster (less
	// overlap) than NYC's.
	at := 3 // fractions[3] = 0.3
	b.ReportMetric(series[0].ImpressionCurve[at], "NYC-impression@30pct")
	b.ReportMetric(series[1].ImpressionCurve[at], "SG-impression@30pct")
}

// benchFigure is the shared body of the per-figure effectiveness benches.
func benchFigure(b *testing.B, num int, cities []dataset.City, lambdas []float64) {
	r := warm(b, cities, lambdas)
	b.ResetTimer()
	var figs []experiment.Figure
	for i := 0; i < b.N; i++ {
		var err error
		figs, err = r.Figure(num)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, figs)
}

var defaultLambdaOnly = []float64{market.DefaultLambda}

// BenchmarkFigure2_RegretAlpha_P1 regenerates Figure 2: regret vs α at
// p=1% (many small advertisers) on NYC.
func BenchmarkFigure2_RegretAlpha_P1(b *testing.B) {
	benchFigure(b, 2, []dataset.City{dataset.NYC}, defaultLambdaOnly)
}

// BenchmarkFigure3_RegretAlpha_P2 regenerates Figure 3 (p=2%, NYC).
func BenchmarkFigure3_RegretAlpha_P2(b *testing.B) {
	benchFigure(b, 3, []dataset.City{dataset.NYC}, defaultLambdaOnly)
}

// BenchmarkFigure4_RegretAlpha_P5 regenerates Figure 4 (p=5%, NYC).
func BenchmarkFigure4_RegretAlpha_P5(b *testing.B) {
	benchFigure(b, 4, []dataset.City{dataset.NYC}, defaultLambdaOnly)
}

// BenchmarkFigure5_RegretAlpha_P10 regenerates Figure 5 (p=10%, NYC).
func BenchmarkFigure5_RegretAlpha_P10(b *testing.B) {
	benchFigure(b, 5, []dataset.City{dataset.NYC}, defaultLambdaOnly)
}

// BenchmarkFigure6_RegretAlpha_P20 regenerates Figure 6 (p=20%, few big
// advertisers, NYC).
func BenchmarkFigure6_RegretAlpha_P20(b *testing.B) {
	benchFigure(b, 6, []dataset.City{dataset.NYC}, defaultLambdaOnly)
}

// BenchmarkFigure7_SGDefault regenerates Figure 7: the SG dataset at the
// default p across the α grid.
func BenchmarkFigure7_SGDefault(b *testing.B) {
	benchFigure(b, 7, []dataset.City{dataset.SG}, defaultLambdaOnly)
}

// reportRuntime pushes per-method mean wall-clock seconds into the bench
// output for the efficiency figures.
func reportRuntime(b *testing.B, figs []experiment.Figure) {
	b.Helper()
	sums := map[string]float64{}
	n := 0
	for _, fig := range figs {
		for _, pt := range fig.Points {
			n++
			for _, m := range pt.Metrics {
				sums[m.Algorithm] += m.Runtime.Seconds()
			}
		}
	}
	for alg, s := range sums {
		b.ReportMetric(s/float64(n), alg+"-sec")
	}
}

// BenchmarkFigure8_RuntimeAlpha regenerates Figure 8: running time vs α on
// both cities.
func BenchmarkFigure8_RuntimeAlpha(b *testing.B) {
	r := warm(b, bothCities, defaultLambdaOnly)
	b.ResetTimer()
	var figs []experiment.Figure
	for i := 0; i < b.N; i++ {
		var err error
		figs, err = r.Figure(8)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRuntime(b, figs)
}

// BenchmarkFigure9_RuntimeP regenerates Figure 9: running time vs p on both
// cities.
func BenchmarkFigure9_RuntimeP(b *testing.B) {
	r := warm(b, bothCities, defaultLambdaOnly)
	b.ResetTimer()
	var figs []experiment.Figure
	for i := 0; i < b.N; i++ {
		var err error
		figs, err = r.Figure(9)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRuntime(b, figs)
}

// BenchmarkFigure10_GammaNYC regenerates Figure 10: regret vs γ on NYC.
func BenchmarkFigure10_GammaNYC(b *testing.B) {
	benchFigure(b, 10, []dataset.City{dataset.NYC}, defaultLambdaOnly)
}

// BenchmarkFigure11_GammaSG regenerates Figure 11: regret vs γ on SG.
func BenchmarkFigure11_GammaSG(b *testing.B) {
	benchFigure(b, 11, []dataset.City{dataset.SG}, defaultLambdaOnly)
}

// BenchmarkFigure12_Lambda regenerates Figure 12: regret vs λ on both
// cities (the λ grid needs one universe per λ).
func BenchmarkFigure12_Lambda(b *testing.B) {
	benchFigure(b, 12, bothCities, market.Lambdas)
}

// --- Ablation benches for the design choices called out in DESIGN.md ---

// ablationInstance builds one NYC instance at the default workload for the
// solver ablations.
func ablationInstance(b *testing.B) *core.Instance {
	b.Helper()
	r := warm(b, []dataset.City{dataset.NYC}, defaultLambdaOnly)
	u, err := r.Universe(dataset.NYC, market.DefaultLambda)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := market.NewInstance(u,
		market.Config{Alpha: market.DefaultAlpha, P: market.DefaultP},
		market.DefaultGamma, rng.New(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkAblation_RestartCount varies the random restart count of the
// local search framework (Algorithm 3's preset iteration count).
func BenchmarkAblation_RestartCount(b *testing.B) {
	inst := ablationInstance(b)
	for _, restarts := range []int{1, 2, 5, 10} {
		b.Run(fmt.Sprintf("restarts=%d", restarts), func(b *testing.B) {
			var regret float64
			for i := 0; i < b.N; i++ {
				p := mroam.BLS(inst, mroam.SearchOptions{Restarts: restarts, Seed: benchSeed})
				regret = p.TotalRegret()
			}
			b.ReportMetric(regret, "regret")
		})
	}
}

// BenchmarkAblation_BLSImprovementRatio varies the acceptance threshold r
// of Definition 6.1: larger r terminates earlier at the cost of a looser
// (1+r)-approximate local maximum.
func BenchmarkAblation_BLSImprovementRatio(b *testing.B) {
	inst := ablationInstance(b)
	for _, ratio := range []float64{0, 0.001, 0.01, 0.1} {
		b.Run(fmt.Sprintf("r=%g", ratio), func(b *testing.B) {
			var regret float64
			for i := 0; i < b.N; i++ {
				p := mroam.BLS(inst, mroam.SearchOptions{
					Restarts: 1, Seed: benchSeed, ImprovementRatio: ratio,
				})
				regret = p.TotalRegret()
			}
			b.ReportMetric(regret, "regret")
		})
	}
}

// BenchmarkAblation_RandomSeedPlan compares the synchronous greedy from an
// empty plan against the framework's random-seeded variant (Lines 3.3-3.7),
// isolating the value of the probabilistic assignments.
func BenchmarkAblation_RandomSeedPlan(b *testing.B) {
	inst := ablationInstance(b)
	b.Run("empty-init", func(b *testing.B) {
		var regret float64
		for i := 0; i < b.N; i++ {
			regret = core.GGlobal(inst).TotalRegret()
		}
		b.ReportMetric(regret, "regret")
	})
	b.Run("random-seeded", func(b *testing.B) {
		var regret float64
		for i := 0; i < b.N; i++ {
			// One restart with no local search isolates the seeding.
			p := core.RandomizedLocalSearch(inst, core.LocalSearchOptions{
				Search: core.AdvertiserDriven, Restarts: 1, Seed: benchSeed, MaxPasses: 1,
			})
			regret = p.TotalRegret()
		}
		b.ReportMetric(regret, "regret")
	})
}

// BenchmarkAblation_IncrementalCoverage compares the incremental counter
// (O(deg) marginal gains) against from-scratch union recomputation, the
// core data-structure choice of this implementation.
func BenchmarkAblation_IncrementalCoverage(b *testing.B) {
	r := warm(b, []dataset.City{dataset.NYC}, defaultLambdaOnly)
	u, err := r.Universe(dataset.NYC, market.DefaultLambda)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := market.NewInstance(u,
		market.Config{Alpha: market.DefaultAlpha, P: market.DefaultP},
		market.DefaultGamma, rng.New(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	plan := core.GGlobal(inst)
	members := plan.Set(0, nil)
	if len(members) == 0 {
		b.Fatal("advertiser 0 got no billboards")
	}
	free := plan.UnassignedBillboards(nil)
	if len(free) == 0 {
		b.Skip("no unassigned billboards at this workload")
	}
	b.Run("incremental-gain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = plan.GainOf(0, free[i%len(free)])
		}
	})
	b.Run("naive-recompute", func(b *testing.B) {
		base := append([]int(nil), members...)
		for i := 0; i < b.N; i++ {
			withB := append(base, free[i%len(free)])
			_ = u.UnionCount(withB) - u.UnionCount(base)
			base = base[:len(members)]
		}
	})
}

// BenchmarkAblation_GridCellSize varies the spatial-index cell size used by
// the influence model's radius queries.
func BenchmarkAblation_GridCellSize(b *testing.B) {
	r := benchRunner()
	d, err := r.Dataset(dataset.NYC)
	if err != nil {
		b.Fatal(err)
	}
	for _, cell := range []float64{25, 100, 400} {
		b.Run(fmt.Sprintf("cell=%gm", cell), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := influence.BuildCoverage(d.Trajectories, d.Billboards, influence.Options{
					Lambda:   market.DefaultLambda,
					CellSize: cell,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolvers times each method once on the default NYC workload —
// the per-method numbers behind Figures 8-9's ordering claim.
func BenchmarkSolvers(b *testing.B) {
	inst := ablationInstance(b)
	for _, alg := range mroam.Algorithms(benchSeed, benchRestarts) {
		b.Run(alg.Name(), func(b *testing.B) {
			var regret float64
			for i := 0; i < b.N; i++ {
				regret = alg.Solve(inst).TotalRegret()
			}
			b.ReportMetric(regret, "regret")
		})
	}
}

// BenchmarkApproximationGap measures the empirical optimality gap of every
// method against the exact solver on small random instances (ground-truth
// companion to §4's inapproximability result).
func BenchmarkApproximationGap(b *testing.B) {
	var rows []experiment.GapRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.ApproximationGap(experiment.GapConfig{
			Instances: 10, Billboards: 8, Advertisers: 2, Seed: benchSeed, Restarts: benchRestarts,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		b.ReportMetric(row.MeanRatio, row.Algorithm+"-mean-ratio")
	}
}

// BenchmarkSimulation_PolicyComparison runs the rolling-market simulator
// (the introduction's advertisers-arrive-daily setting) with each method as
// the daily policy and reports revenue per policy.
func BenchmarkSimulation_PolicyComparison(b *testing.B) {
	r := warm(b, []dataset.City{dataset.NYC}, defaultLambdaOnly)
	u, err := r.Universe(dataset.NYC, market.DefaultLambda)
	if err != nil {
		b.Fatal(err)
	}
	cfg := mroam.SimulationConfig{
		Days:             14,
		ArrivalsPerDay:   4,
		ContractMinDays:  2,
		ContractMaxDays:  5,
		DemandFractionLo: 0.04,
		DemandFractionHi: 0.12,
		Gamma:            market.DefaultGamma,
		Seed:             benchSeed,
	}
	algs := mroam.Algorithms(benchSeed, 1)
	b.ResetTimer()
	var results map[string]*mroam.SimulationResult
	for i := 0; i < b.N; i++ {
		results, err = mroam.ComparePolicies(u, algs, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for name, res := range results {
		b.ReportMetric(res.TotalRevenue, name+"-revenue")
	}
}

// BenchmarkAblation_ImpressionThreshold compares the union-coverage
// influence (k=1, the paper's measure) with the impression-count measure
// (k=2, the cited KDD'19 alternative) on the same universe. Demands are
// scaled to each measure's attainable coverage so the workloads are
// comparable.
func BenchmarkAblation_ImpressionThreshold(b *testing.B) {
	r := warm(b, []dataset.City{dataset.NYC}, defaultLambdaOnly)
	u, err := r.Universe(dataset.NYC, market.DefaultLambda)
	if err != nil {
		b.Fatal(err)
	}
	all := make([]int, u.NumBillboards())
	for i := range all {
		all[i] = i
	}
	for _, k := range []int{1, 2} {
		attainable := u.UnionCountK(all, k)
		if attainable == 0 {
			continue
		}
		seedRNG := rng.New(benchSeed).Derive(fmt.Sprintf("impressions-%d", k))
		advs := make([]mroam.Advertiser, 5)
		for i := range advs {
			d := int64(float64(attainable) / 8 * seedRNG.Range(0.8, 1.2))
			if d < 1 {
				d = 1
			}
			advs[i] = mroam.Advertiser{Demand: d, Payment: float64(d)}
		}
		inst, err := core.NewInstanceWithImpressions(u, advs, market.DefaultGamma, k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var regret float64
			for i := 0; i < b.N; i++ {
				regret = mroam.BLS(inst, mroam.SearchOptions{Restarts: 1, Seed: benchSeed}).TotalRegret()
			}
			b.ReportMetric(regret, "regret")
			b.ReportMetric(float64(attainable), "attainable-coverage")
		})
	}
}

// BenchmarkAblation_SpatialIndex compares the two spatial indexes for the
// influence-model join: the tuned uniform grid vs the parameter-free
// STR-packed R-tree.
func BenchmarkAblation_SpatialIndex(b *testing.B) {
	r := benchRunner()
	d, err := r.Dataset(dataset.NYC)
	if err != nil {
		b.Fatal(err)
	}
	for _, idx := range []struct {
		name string
		kind influence.IndexKind
	}{
		{"grid", influence.GridIndex},
		{"rtree", influence.RTreeIndex},
	} {
		b.Run(idx.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := influence.BuildCoverage(d.Trajectories, d.Billboards, influence.Options{
					Lambda: market.DefaultLambda,
					Index:  idx.kind,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_MarketComposition tests the paper's Q2 conclusion
// ("having a large number of medium-demand advertisers is an ideal
// balance"): the same global demand α composed as many small advertisers,
// few big ones, or a mix, allocated by BLS.
func BenchmarkAblation_MarketComposition(b *testing.B) {
	r := warm(b, []dataset.City{dataset.NYC}, defaultLambdaOnly)
	u, err := r.Universe(dataset.NYC, market.DefaultLambda)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"many-small", "few-big", "mixed"} {
		cfg := market.Compositions(market.DefaultAlpha)[name]
		advs, err := market.GenerateMixed(u, cfg, rng.New(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		inst, err := core.NewInstance(u, advs, market.DefaultGamma)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var regret float64
			var satisfied int
			for i := 0; i < b.N; i++ {
				p := mroam.BLS(inst, mroam.SearchOptions{Restarts: 1, Seed: benchSeed})
				regret = p.TotalRegret()
				satisfied = p.SatisfiedCount()
			}
			b.ReportMetric(regret, "regret")
			b.ReportMetric(float64(satisfied)/float64(inst.NumAdvertisers()), "satisfied-frac")
		})
	}
}
