package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &buf, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-city", "Atlantis"}, &buf, nil); err == nil {
		t.Error("unknown city accepted")
	}
	if err := run([]string{"-data", "/nonexistent/dataset"}, &buf, nil); err == nil {
		t.Error("missing dataset directory accepted")
	}
	if err := run([]string{"-addr", "not-an-address", "-scale", "0.02"}, &buf, nil); err == nil {
		t.Error("unlistenable address accepted")
	}
	if err := run([]string{"-instances", "/nonexistent/specs.json"}, &buf, nil); err == nil {
		t.Error("missing specs file accepted")
	}
	// -instances owns the instance definitions; mixing in per-instance
	// flags is a configuration error, not a silent override.
	specs := filepath.Join(t.TempDir(), "specs.json")
	if err := os.WriteFile(specs, []byte(`[{"name":"a","scale":0.02}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-instances", specs, "-city", "SG"}, &buf, nil)
	if err == nil || !strings.Contains(err.Error(), "-city") {
		t.Errorf("spec-flag clash with -instances: %v", err)
	}
}

// TestRunInstancesFleet boots the daemon from a fleet file, solves against
// each named instance, and hot-swaps one over the admin API.
func TestRunInstancesFleet(t *testing.T) {
	specs := filepath.Join(t.TempDir(), "specs.json")
	fleet := `[
  {"name": "nyc", "city": "NYC", "scale": 0.02, "seed": 5, "alpha": 2.0, "p": 0.1},
  {"name": "sg", "city": "SG", "scale": 0.02, "seed": 7, "alpha": 2.0, "p": 0.1}
]`
	if err := os.WriteFile(specs, []byte(fleet), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	ready := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-instances", specs, "-workers", "2"}, &buf, ready)
	}()
	var bound addrs
	select {
	case bound = <-ready:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}
	base := "http://" + bound.api

	// The first spec is the default: healthz reports it.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Default   string `json:"default"`
		Instances int    `json:"instances"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Default != "nyc" || health.Instances != 2 {
		t.Errorf("healthz default=%q instances=%d, want nyc/2", health.Default, health.Instances)
	}

	// Both named instances answer, each reporting its own identity.
	for _, name := range []string{"nyc", "sg"} {
		resp, err := http.Post(base+"/solve", "application/json",
			strings.NewReader(`{"instance":"`+name+`","algorithm":"G-Order"}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %s: %d: %s", name, resp.StatusCode, body)
		}
		var solved struct {
			Instance   string `json:"instance"`
			Generation uint64 `json:"generation"`
		}
		if err := json.Unmarshal(body, &solved); err != nil {
			t.Fatalf("decode %s: %v", body, err)
		}
		if solved.Instance != name || solved.Generation == 0 {
			t.Errorf("solve %s reported %q gen %d", name, solved.Instance, solved.Generation)
		}
	}

	// Hot-swap "sg" with a new seed: generation advances past both boots.
	req, err := http.NewRequest(http.MethodPut, base+"/instances/sg",
		strings.NewReader(`{"city":"SG","scale":0.02,"seed":8,"alpha":2.0,"p":0.1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload sg: %d: %s", resp.StatusCode, body)
	}
	var info struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Generation <= 2 {
		t.Errorf("reload generation %d, want above the 2 boot loads", info.Generation)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained")
	}
	if out := buf.String(); !strings.Contains(out, `"instance":"sg"`) {
		t.Errorf("missing instance-loaded log lines:\n%s", out)
	}
}

// TestRunServesAndDrainsOnSIGTERM boots the daemon on an ephemeral port,
// solves over HTTP, then delivers a real SIGTERM and expects a clean drain.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	var buf bytes.Buffer
	ready := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-scale", "0.02", "-workers", "2"}, &buf, ready)
	}()

	var bound addrs
	select {
	case bound = <-ready:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}
	base := "http://" + bound.api

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/solve", "application/json",
		strings.NewReader(`{"algorithm":"BLS","restarts":2,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d: %s", resp.StatusCode, body)
	}
	var solved struct {
		TotalRegret       float64 `json:"total_regret"`
		RestartsCompleted int     `json:"restarts_completed"`
		Truncated         bool    `json:"truncated"`
	}
	if err := json.Unmarshal(body, &solved); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	if solved.TotalRegret < 0 || solved.RestartsCompleted != 2 || solved.Truncated {
		t.Errorf("suspicious solve response: %s", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil (clean drain)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained after SIGTERM")
	}
	if out := buf.String(); !strings.Contains(out, "draining") {
		t.Errorf("missing drain log line in output:\n%s", out)
	}
	// The daemon's output is structured: every non-empty line must be a
	// JSON object (usage text from flag errors never reaches this test).
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("non-JSON log line %q: %v", line, err)
		}
	}
}

// TestRunCacheServesRepeats boots the daemon with -cache-entries and checks
// the end-to-end cache contract: a repeated identical solve is answered from
// cache with an identical result, the response says so, and the hit shows up
// in the Prometheus exposition.
func TestRunCacheServesRepeats(t *testing.T) {
	var buf bytes.Buffer
	ready := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-scale", "0.02", "-workers", "2",
			"-cache-entries", "64",
		}, &buf, ready)
	}()
	var bound addrs
	select {
	case bound = <-ready:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}
	base := "http://" + bound.api

	solve := func() []byte {
		t.Helper()
		resp, err := http.Post(base+"/solve", "application/json",
			strings.NewReader(`{"algorithm":"BLS","restarts":2,"seed":3}`))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve: %d: %s", resp.StatusCode, body)
		}
		return body
	}
	type result struct {
		TotalRegret float64 `json:"total_regret"`
		Evals       int64   `json:"evals"`
		Cached      bool    `json:"cached"`
	}
	var first, second result
	firstRaw := solve()
	if err := json.Unmarshal(firstRaw, &first); err != nil {
		t.Fatalf("decode %s: %v", firstRaw, err)
	}
	if first.Cached {
		t.Errorf("first solve already cached: %s", firstRaw)
	}
	secondRaw := solve()
	if err := json.Unmarshal(secondRaw, &second); err != nil {
		t.Fatalf("decode %s: %v", secondRaw, err)
	}
	if !second.Cached {
		t.Errorf("repeat solve not served from cache: %s", secondRaw)
	}
	if second.TotalRegret != first.TotalRegret || second.Evals != first.Evals {
		t.Errorf("cached result differs: %s vs %s", secondRaw, firstRaw)
	}

	// /metrics is served on the API listener too; the hit is visible there.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`mroamd_solve_cache_events_total{event="hit"} 1`,
		`mroamd_solve_cache_events_total{event="miss"} 1`,
		"mroamd_solve_cache_entries 1",
	} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("/metrics missing %q:\n%s", want, expo)
		}
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained")
	}
}

// TestRunOpsSurface boots the daemon with a separate ops listener and
// checks every endpoint of the operational surface answers, including a
// valid Prometheus exposition that reflects served solves.
func TestRunOpsSurface(t *testing.T) {
	var buf bytes.Buffer
	ready := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-ops-addr", "127.0.0.1:0",
			"-scale", "0.02", "-workers", "2",
		}, &buf, ready)
	}()
	var bound addrs
	select {
	case bound = <-ready:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}
	if bound.ops == "" {
		t.Fatal("ops listener not bound")
	}

	resp, err := http.Post("http://"+bound.api+"/solve", "application/json",
		strings.NewReader(`{"algorithm":"G-Order"}`))
	if err != nil {
		t.Fatal(err)
	}
	reqID := resp.Header.Get("X-Request-ID")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
	if reqID == "" {
		t.Error("solve response missing X-Request-ID header")
	}

	get := func(path string) (int, string, []byte) {
		t.Helper()
		resp, err := http.Get("http://" + bound.ops + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), body
	}

	status, ctype, body := get("/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d", status)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Errorf("/metrics exposition invalid: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), `mroamd_requests_total{algorithm="G-Order",model="base"} 1`) {
		t.Errorf("/metrics missing the served solve:\n%s", body)
	}

	if status, _, body := get("/debug/pprof/"); status != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/: %d, body %.60q", status, body)
	}
	if status, _, body := get("/debug/vars"); status != http.StatusOK || !strings.Contains(string(body), "memstats") {
		t.Errorf("/debug/vars: %d, body %.60q", status, body)
	}
	if status, _, body := get("/buildinfo"); status != http.StatusOK || !strings.Contains(string(body), "go") {
		t.Errorf("/buildinfo: %d, body %.60q", status, body)
	}

	// Shut down before touching buf: the daemon goroutine owns the log
	// writer until run returns.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained")
	}

	// The request log line carries the ID the client saw.
	if reqID != "" && !strings.Contains(buf.String(), reqID) {
		t.Errorf("request ID %s absent from logs:\n%s", reqID, buf.String())
	}
}

// TestRunAdmissionFlag boots the daemon with -admission deadline, checks
// the policy is live on /healthz and in the startup record, and that an
// unknown policy is rejected at startup.
func TestRunAdmissionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-admission", "lifo", "-scale", "0.02"}, &buf, nil); err == nil ||
		!strings.Contains(err.Error(), "admission policy") {
		t.Fatalf("unknown admission policy accepted: %v", err)
	}

	buf.Reset()
	ready := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-scale", "0.02", "-workers", "2",
			"-admission", "deadline"}, &buf, ready)
	}()
	var bound addrs
	select {
	case bound = <-ready:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}
	base := "http://" + bound.api

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Admission string `json:"admission"`
		FairShare int    `json:"fair_share"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Admission != "deadline" || health.FairShare < 1 {
		t.Errorf("healthz admission %q fair_share %d, want deadline and >= 1",
			health.Admission, health.FairShare)
	}

	// A deadline-free solve is always admitted under the deadline policy.
	resp, err = http.Post(base+"/solve", "application/json",
		strings.NewReader(`{"algorithm":"G-Order"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve under deadline policy: %d", resp.StatusCode)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained")
	}
	if out := buf.String(); !strings.Contains(out, `"admission":"deadline"`) {
		t.Errorf("startup record missing admission policy:\n%s", out)
	}
}
