package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestBuildInstance(t *testing.T) {
	inst, err := buildInstance("NYC", "", 0.02, 42, 2.0, 0.02, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Universe().NumBillboards() == 0 || inst.NumAdvertisers() == 0 {
		t.Fatalf("empty instance: %d billboards, %d advertisers",
			inst.Universe().NumBillboards(), inst.NumAdvertisers())
	}
	if _, err := buildInstance("Atlantis", "", 0.02, 42, 2.0, 0.02, 0.5, 100); err == nil {
		t.Error("unknown city accepted")
	}
	if _, err := buildInstance("NYC", "/nonexistent/dataset", 0.02, 42, 2.0, 0.02, 0.5, 100); err == nil {
		t.Error("missing dataset directory accepted")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &buf, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-city", "Atlantis"}, &buf, nil); err == nil {
		t.Error("unknown city accepted")
	}
	if err := run([]string{"-addr", "not-an-address", "-scale", "0.02"}, &buf, nil); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestRunServesAndDrainsOnSIGTERM boots the daemon on an ephemeral port,
// solves over HTTP, then delivers a real SIGTERM and expects a clean drain.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	var buf bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-scale", "0.02", "-workers", "2"}, &buf, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/solve", "application/json",
		strings.NewReader(`{"algorithm":"BLS","restarts":2,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d: %s", resp.StatusCode, body)
	}
	var solved struct {
		TotalRegret       float64 `json:"total_regret"`
		RestartsCompleted int     `json:"restarts_completed"`
		Truncated         bool    `json:"truncated"`
	}
	if err := json.Unmarshal(body, &solved); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	if solved.TotalRegret < 0 || solved.RestartsCompleted != 2 || solved.Truncated {
		t.Errorf("suspicious solve response: %s", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil (clean drain)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained after SIGTERM")
	}
	if out := buf.String(); !strings.Contains(out, "draining") {
		t.Errorf("missing drain log line in output:\n%s", out)
	}
}
