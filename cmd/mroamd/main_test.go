package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestBuildInstance(t *testing.T) {
	inst, err := buildInstance("NYC", "", 0.02, 42, 2.0, 0.02, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Universe().NumBillboards() == 0 || inst.NumAdvertisers() == 0 {
		t.Fatalf("empty instance: %d billboards, %d advertisers",
			inst.Universe().NumBillboards(), inst.NumAdvertisers())
	}
	if _, err := buildInstance("Atlantis", "", 0.02, 42, 2.0, 0.02, 0.5, 100); err == nil {
		t.Error("unknown city accepted")
	}
	if _, err := buildInstance("NYC", "/nonexistent/dataset", 0.02, 42, 2.0, 0.02, 0.5, 100); err == nil {
		t.Error("missing dataset directory accepted")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &buf, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-city", "Atlantis"}, &buf, nil); err == nil {
		t.Error("unknown city accepted")
	}
	if err := run([]string{"-addr", "not-an-address", "-scale", "0.02"}, &buf, nil); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestRunServesAndDrainsOnSIGTERM boots the daemon on an ephemeral port,
// solves over HTTP, then delivers a real SIGTERM and expects a clean drain.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	var buf bytes.Buffer
	ready := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-scale", "0.02", "-workers", "2"}, &buf, ready)
	}()

	var bound addrs
	select {
	case bound = <-ready:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}
	base := "http://" + bound.api

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/solve", "application/json",
		strings.NewReader(`{"algorithm":"BLS","restarts":2,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d: %s", resp.StatusCode, body)
	}
	var solved struct {
		TotalRegret       float64 `json:"total_regret"`
		RestartsCompleted int     `json:"restarts_completed"`
		Truncated         bool    `json:"truncated"`
	}
	if err := json.Unmarshal(body, &solved); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	if solved.TotalRegret < 0 || solved.RestartsCompleted != 2 || solved.Truncated {
		t.Errorf("suspicious solve response: %s", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil (clean drain)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained after SIGTERM")
	}
	if out := buf.String(); !strings.Contains(out, "draining") {
		t.Errorf("missing drain log line in output:\n%s", out)
	}
	// The daemon's output is structured: every non-empty line must be a
	// JSON object (usage text from flag errors never reaches this test).
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("non-JSON log line %q: %v", line, err)
		}
	}
}

// TestRunOpsSurface boots the daemon with a separate ops listener and
// checks every endpoint of the operational surface answers, including a
// valid Prometheus exposition that reflects served solves.
func TestRunOpsSurface(t *testing.T) {
	var buf bytes.Buffer
	ready := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-ops-addr", "127.0.0.1:0",
			"-scale", "0.02", "-workers", "2",
		}, &buf, ready)
	}()
	var bound addrs
	select {
	case bound = <-ready:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}
	if bound.ops == "" {
		t.Fatal("ops listener not bound")
	}

	resp, err := http.Post("http://"+bound.api+"/solve", "application/json",
		strings.NewReader(`{"algorithm":"G-Order"}`))
	if err != nil {
		t.Fatal(err)
	}
	reqID := resp.Header.Get("X-Request-ID")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
	if reqID == "" {
		t.Error("solve response missing X-Request-ID header")
	}

	get := func(path string) (int, string, []byte) {
		t.Helper()
		resp, err := http.Get("http://" + bound.ops + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), body
	}

	status, ctype, body := get("/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d", status)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Errorf("/metrics exposition invalid: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), `mroamd_requests_total{algorithm="G-Order"} 1`) {
		t.Errorf("/metrics missing the served solve:\n%s", body)
	}

	if status, _, body := get("/debug/pprof/"); status != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/: %d, body %.60q", status, body)
	}
	if status, _, body := get("/debug/vars"); status != http.StatusOK || !strings.Contains(string(body), "memstats") {
		t.Errorf("/debug/vars: %d, body %.60q", status, body)
	}
	if status, _, body := get("/buildinfo"); status != http.StatusOK || !strings.Contains(string(body), "go") {
		t.Errorf("/buildinfo: %d, body %.60q", status, body)
	}

	// Shut down before touching buf: the daemon goroutine owns the log
	// writer until run returns.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained")
	}

	// The request log line carries the ID the client saw.
	if reqID != "" && !strings.Contains(buf.String(), reqID) {
		t.Errorf("request ID %s absent from logs:\n%s", reqID, buf.String())
	}
}
