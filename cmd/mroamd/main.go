// Command mroamd serves MROAM solves over HTTP: it loads (or generates) one
// instance at startup and answers POST /solve requests with per-request
// algorithm and deadline selection on top of the anytime solve engine.
//
// Usage:
//
//	mroamd -addr :8080 -city NYC -scale 0.25 -seed 42
//	mroamd -addr :8080 -data data/nyc -workers 4 -queue 8
//
//	curl -s localhost:8080/solve -d '{"algorithm":"BLS","restarts":5,"deadline_ms":100}'
//	curl -s localhost:8080/stats
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, queued
// and in-flight solves drain (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/market"
	"repro/internal/rng"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "mroamd:", err)
		os.Exit(1)
	}
}

// run parses flags, builds the instance and serves until a signal arrives.
// ready, when non-nil, receives the bound address once the listener is up
// (tests use it); the returned error is nil on a clean drained shutdown.
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("mroamd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address")
	city := fs.String("city", "NYC", "city to generate (NYC or SG); ignored when -data is set")
	data := fs.String("data", "", "load a saved dataset directory instead of generating")
	scale := fs.Float64("scale", 0.25, "fraction of the default dataset scale")
	seed := fs.Uint64("seed", 42, "seed for dataset and market generation")
	alpha := fs.Float64("alpha", market.DefaultAlpha, "demand-supply ratio α")
	p := fs.Float64("p", market.DefaultP, "average-individual demand ratio p")
	gamma := fs.Float64("gamma", market.DefaultGamma, "unsatisfied penalty ratio γ")
	lambda := fs.Float64("lambda", market.DefaultLambda, "influence radius λ in meters")
	workers := fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queue := fs.Int("queue", -1, "queued requests beyond the workers (-1 = 2×workers); overflow answers 429")
	defaultDeadline := fs.Duration("default-deadline", 0, "deadline applied when a request omits deadline_ms (0 = none)")
	maxDeadline := fs.Duration("max-deadline", 5*time.Minute, "cap on per-request deadlines (0 = none)")
	maxRestarts := fs.Int("max-restarts", server.DefaultMaxRestarts, "cap on per-request restart budgets")
	drain := fs.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight solves")
	if err := fs.Parse(args); err != nil {
		return err
	}

	inst, err := buildInstance(*city, *data, *scale, *seed, *alpha, *p, *gamma, *lambda)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Instance:        inst,
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		MaxRestarts:     *maxRestarts,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The listener is live as soon as net.Listen returns (connections queue
	// in the accept backlog), so the banner and readiness signal happen
	// here, on the same goroutine as the shutdown log below — out need not
	// be safe for concurrent writes.
	fmt.Fprintf(out, "mroamd: serving %d billboards / %d advertisers on %s\n",
		inst.Universe().NumBillboards(), inst.NumAdvertisers(), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	fmt.Fprintln(out, "mroamd: shutting down, draining in-flight solves")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}

// buildInstance loads or generates the dataset and derives the market the
// daemon serves, mirroring `mroam solve`'s instance construction.
func buildInstance(city, data string, scale float64, seed uint64, alpha, p, gamma, lambda float64) (*core.Instance, error) {
	var d *dataset.Dataset
	var err error
	if data != "" {
		d, err = dataset.Load(data)
	} else {
		var cfg dataset.Config
		switch strings.ToUpper(city) {
		case "NYC":
			cfg = dataset.DefaultNYC(seed)
		case "SG":
			cfg = dataset.DefaultSG(seed)
		default:
			return nil, fmt.Errorf("unknown city %q (want NYC or SG)", city)
		}
		d, err = dataset.Generate(cfg.Scale(scale))
	}
	if err != nil {
		return nil, err
	}
	u, err := d.BuildUniverse(lambda)
	if err != nil {
		return nil, err
	}
	return market.NewInstance(u, market.Config{Alpha: alpha, P: p}, gamma,
		rng.New(seed).Derive("market"))
}
