// Command mroamd serves MROAM solves over HTTP: it preloads a catalog of
// named instances at startup and answers POST /solve requests with
// per-request instance, algorithm and deadline selection on top of the
// anytime solve engine.
//
// Usage:
//
//	mroamd -addr :8080 -city NYC -scale 0.25 -seed 42
//	mroamd -addr :8080 -instances specs.json
//	mroamd -addr :8080 -ops-addr 127.0.0.1:8081 -workers 4 -queue 8
//	mroamd -addr :8080 -cache-entries 256
//	mroamd -addr :8080 -admission deadline
//	mroamd -addr :8080 -admission fair -fair-share 4
//	mroamd -addr :8080 -trace-store 1024 -trace-keep-slowest 0.1
//
//	curl -s localhost:8080/solve -d '{"algorithm":"BLS","restarts":5,"deadline_ms":100}'
//	curl -s localhost:8080/solve -d '{"instance":"sg","algorithm":"BLS"}'
//	curl -s localhost:8080/instances
//	curl -s -X PUT localhost:8080/instances/sg -d '{"city":"SG","scale":0.25}'
//	curl -s -X PUT localhost:8080/instances/z -d '{"city":"NYC","model":{"kind":"zonal","zone_cap":40}}'
//	curl -s localhost:8080/stats
//	curl -s localhost:8081/metrics
//	curl -s 'localhost:8081/debug/traces?outcome=served&min_duration_ms=100'
//	curl -s localhost:8081/debug/traces/4bf92f3577b34da6a3ce929d0e0e4736
//
// Instances carry a regret model: the base MROAM objective by default, or
// the zonal variant (-model zonal -zone-cap N, or a {"model": {...}} block
// in a spec) capping each advertiser's counted influence per geographic
// zone. Responses for variant instances echo the model kind, and
// mroamd_requests_total and /debug/traces are labeled by it.
//
// Without -instances the dataset/market flags describe a single instance
// named "default", preserving the original single-instance behavior. With
// -instances the given JSON file (an array of named catalog specs) is built
// into the catalog and the first spec becomes the default. Either way the
// /instances admin endpoints can list, hot-swap and delete instances at
// runtime without interrupting in-flight solves.
//
// The optional -ops-addr listener carries the operational surface —
// /metrics (Prometheus text exposition), /debug/pprof/*, /debug/vars
// (expvar) and /buildinfo — so profilers and scrapers never compete with
// solve traffic and the debug endpoints can be bound to localhost while
// the API listens publicly. /metrics is also served on the API listener
// for single-port deployments.
//
// Admission defaults to shed-don't-queue: a request that cannot take a
// queue slot answers 429 immediately. -admission deadline additionally
// sheds requests whose solve deadline the queue's measured drain rate
// provably cannot meet, and -admission fair caps one instance's share of
// the queue (-fair-share) so a hot market cannot starve the fleet. Every
// shed is labeled by reason in mroamd_requests_rejected_total and carries a
// Retry-After header derived from the current drain rate.
//
// With -cache-entries N the daemon memoizes up to N completed untruncated
// solve results by their deterministic request tuple (instance + catalog
// generation, algorithm, seed, restarts, improvement ratio): repeats are
// answered from cache ("cached": true in the response) and identical
// concurrent requests coalesce onto a single solver execution. Caching is
// off by default, preserving the exact pre-cache behavior.
//
// Every /solve request is traced through its lifecycle phases (admission,
// queue wait, cache lookup, solve with per-restart child spans, encode):
// responses carry Server-Timing headers, the request continues a client's
// W3C traceparent (the trace ID doubles as X-Request-ID), and completed
// traces land in a bounded in-daemon span store served on /debug/traces.
// The store tail-samples plain served traces, always keeping errors, sheds,
// truncations and the slowest quantile (-trace-keep-slowest). -trace-store 0
// disables tracing entirely; the request path then mints no span IDs and
// solve results are bit-identical (tracing is observational).
//
// All daemon output is structured logging (one JSON object per line via
// log/slog): a startup record, one record per /solve request carrying the
// request ID, outcome and latency, and a shutdown record. -log-level debug
// additionally logs per-restart solver trace events.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, queued
// and in-flight solves drain (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "mroamd:", err)
		os.Exit(1)
	}
}

// addrs is the readiness signal: the bound API address and, when -ops-addr
// was given, the bound ops address ("" otherwise).
type addrs struct {
	api string
	ops string
}

// run parses flags, builds the instance and serves until a signal arrives.
// ready, when non-nil, receives the bound addresses once the listeners are
// up (tests use it); the returned error is nil on a clean drained shutdown.
func run(args []string, out io.Writer, ready chan<- addrs) error {
	fs := flag.NewFlagSet("mroamd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address for the solve API")
	opsAddr := fs.String("ops-addr", "", "listen address for the ops surface: /metrics, /debug/pprof, /debug/vars, /debug/traces, /buildinfo (empty = disabled)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error (debug adds per-restart solver trace events)")
	instances := fs.String("instances", "", "JSON file of named instance specs to preload (first entry is the default); replaces the dataset/market flags")
	specFlags := catalog.Bind(fs, catalog.FieldsAll, catalog.DefaultSpec())
	workers := fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queue := fs.Int("queue", -1, "queued requests beyond the workers (-1 = 2×workers); overflow answers 429")
	admission := fs.String("admission", server.AdmitShed, "admission policy: shed (reject only when the queue is full), deadline (also shed requests whose deadline the queue provably cannot meet), fair (also cap one instance's share of the queue)")
	fairShare := fs.Int("fair-share", 0, "max admission slots one instance may hold under -admission fair (0 = half the capacity, rounded up)")
	defaultDeadline := fs.Duration("default-deadline", 0, "deadline applied when a request omits deadline_ms (0 = none)")
	maxDeadline := fs.Duration("max-deadline", 5*time.Minute, "cap on per-request deadlines (0 = none)")
	maxRestarts := fs.Int("max-restarts", server.DefaultMaxRestarts, "cap on per-request restart budgets")
	cacheEntries := fs.Int("cache-entries", 0, "completed solve results to cache by request tuple, with identical concurrent requests coalesced (0 = caching disabled)")
	traceStore := fs.Int("trace-store", 512, "completed request traces to retain for /debug/traces (0 = span tracing disabled)")
	traceKeep := fs.Float64("trace-keep-slowest", 0, "fraction of plain served traces tail sampling keeps — errors, sheds and truncations are always kept (0 = default "+fmt.Sprintf("%g", obs.DefaultTraceKeepSlowest)+", 1 = keep everything)")
	drain := fs.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight solves")
	if err := fs.Parse(args); err != nil {
		return err
	}

	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(out, level)

	cat, err := buildCatalog(*instances, specFlags.Spec(), fs, logger)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Catalog:          cat,
		Workers:          *workers,
		QueueDepth:       *queue,
		DefaultDeadline:  *defaultDeadline,
		MaxDeadline:      *maxDeadline,
		MaxRestarts:      *maxRestarts,
		CacheEntries:     *cacheEntries,
		Admission:        *admission,
		FairShare:        *fairShare,
		TraceCapacity:    *traceStore,
		TraceKeepSlowest: *traceKeep,
		Logger:           logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	var opsSrv *http.Server
	opsBound := ""
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("ops listener: %w", err)
		}
		opsBound = opsLn.Addr().String()
		opsSrv = &http.Server{
			Handler:           opsMux(srv),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := opsSrv.Serve(opsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("ops listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The listeners are live as soon as net.Listen returns (connections
	// queue in the accept backlog), so the startup record and readiness
	// signal happen here.
	def, _ := cat.Get("")
	logger.Info("serving",
		"instances", cat.Len(),
		"default", def.Name,
		"billboards", def.Info.Billboards,
		"advertisers", def.Info.Advertisers,
		"admission", *admission,
		"addr", ln.Addr().String(),
		"ops_addr", opsBound)
	if ready != nil {
		ready <- addrs{api: ln.Addr().String(), ops: opsBound}
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight solves")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if opsSrv != nil {
		defer opsSrv.Close() // ops requests are cheap; no need to drain them
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}

func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// opsMux assembles the operational surface. It is a separate handler tree
// from the API so the profiling endpoints can be bound to a loopback-only
// listener in deployments where the API port is public.
func opsMux(srv *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", srv.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/traces", srv.TracesHandler())
	mux.Handle("/debug/traces/{id}", srv.TracesHandler())
	mux.HandleFunc("/buildinfo", handleBuildInfo)
	return mux
}

func handleBuildInfo(w http.ResponseWriter, _ *http.Request) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		http.Error(w, "build info unavailable", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, bi.String())
}

// buildCatalog assembles the daemon's instance fleet: either the single
// "default" instance the dataset/market flags describe, or every spec in
// the -instances file (whose first entry becomes the default).
func buildCatalog(instancesPath string, flagSpec catalog.Spec, fs *flag.FlagSet, logger *slog.Logger) (*catalog.Catalog, error) {
	cat := catalog.New()
	if instancesPath == "" {
		e, err := cat.Load("default", flagSpec)
		if err != nil {
			return nil, err
		}
		logInstance(logger, e)
		return cat, nil
	}
	// A fleet file owns the instance definitions; silently ignoring the
	// per-instance flags would hide a misconfiguration.
	var clash []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "city", "data", "scale", "seed", "alpha", "p", "gamma", "lambda",
			"model", "zone-cap", "zone-meters":
			clash = append(clash, "-"+f.Name)
		}
	})
	if len(clash) > 0 {
		return nil, fmt.Errorf("-instances conflicts with %s: the specs file defines each instance", strings.Join(clash, ", "))
	}
	specs, err := catalog.ReadSpecsFile(instancesPath)
	if err != nil {
		return nil, err
	}
	for _, spec := range specs {
		e, err := cat.Load(spec.Name, spec)
		if err != nil {
			return nil, fmt.Errorf("instance %q: %w", spec.Name, err)
		}
		logInstance(logger, e)
	}
	return cat, nil
}

func logInstance(logger *slog.Logger, e *catalog.Entry) {
	logger.Info("instance loaded",
		"instance", e.Name,
		"generation", e.Generation,
		"billboards", e.Info.Billboards,
		"advertisers", e.Info.Advertisers,
		"params", e.Spec.Describe(),
		"build_ms", e.Info.BuildMS)
}
