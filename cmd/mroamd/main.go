// Command mroamd serves MROAM solves over HTTP: it loads (or generates) one
// instance at startup and answers POST /solve requests with per-request
// algorithm and deadline selection on top of the anytime solve engine.
//
// Usage:
//
//	mroamd -addr :8080 -city NYC -scale 0.25 -seed 42
//	mroamd -addr :8080 -ops-addr 127.0.0.1:8081 -workers 4 -queue 8
//
//	curl -s localhost:8080/solve -d '{"algorithm":"BLS","restarts":5,"deadline_ms":100}'
//	curl -s localhost:8080/stats
//	curl -s localhost:8081/metrics
//
// The optional -ops-addr listener carries the operational surface —
// /metrics (Prometheus text exposition), /debug/pprof/*, /debug/vars
// (expvar) and /buildinfo — so profilers and scrapers never compete with
// solve traffic and the debug endpoints can be bound to localhost while
// the API listens publicly. /metrics is also served on the API listener
// for single-port deployments.
//
// All daemon output is structured logging (one JSON object per line via
// log/slog): a startup record, one record per /solve request carrying the
// request ID, outcome and latency, and a shutdown record. -log-level debug
// additionally logs per-restart solver trace events.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, queued
// and in-flight solves drain (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "mroamd:", err)
		os.Exit(1)
	}
}

// addrs is the readiness signal: the bound API address and, when -ops-addr
// was given, the bound ops address ("" otherwise).
type addrs struct {
	api string
	ops string
}

// run parses flags, builds the instance and serves until a signal arrives.
// ready, when non-nil, receives the bound addresses once the listeners are
// up (tests use it); the returned error is nil on a clean drained shutdown.
func run(args []string, out io.Writer, ready chan<- addrs) error {
	fs := flag.NewFlagSet("mroamd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address for the solve API")
	opsAddr := fs.String("ops-addr", "", "listen address for the ops surface: /metrics, /debug/pprof, /debug/vars, /buildinfo (empty = disabled)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error (debug adds per-restart solver trace events)")
	city := fs.String("city", "NYC", "city to generate (NYC or SG); ignored when -data is set")
	data := fs.String("data", "", "load a saved dataset directory instead of generating")
	scale := fs.Float64("scale", 0.25, "fraction of the default dataset scale")
	seed := fs.Uint64("seed", 42, "seed for dataset and market generation")
	alpha := fs.Float64("alpha", market.DefaultAlpha, "demand-supply ratio α")
	p := fs.Float64("p", market.DefaultP, "average-individual demand ratio p")
	gamma := fs.Float64("gamma", market.DefaultGamma, "unsatisfied penalty ratio γ")
	lambda := fs.Float64("lambda", market.DefaultLambda, "influence radius λ in meters")
	workers := fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queue := fs.Int("queue", -1, "queued requests beyond the workers (-1 = 2×workers); overflow answers 429")
	defaultDeadline := fs.Duration("default-deadline", 0, "deadline applied when a request omits deadline_ms (0 = none)")
	maxDeadline := fs.Duration("max-deadline", 5*time.Minute, "cap on per-request deadlines (0 = none)")
	maxRestarts := fs.Int("max-restarts", server.DefaultMaxRestarts, "cap on per-request restart budgets")
	drain := fs.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight solves")
	if err := fs.Parse(args); err != nil {
		return err
	}

	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(out, level)

	inst, err := buildInstance(*city, *data, *scale, *seed, *alpha, *p, *gamma, *lambda)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Instance:        inst,
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		MaxRestarts:     *maxRestarts,
		Logger:          logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	var opsSrv *http.Server
	opsBound := ""
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("ops listener: %w", err)
		}
		opsBound = opsLn.Addr().String()
		opsSrv = &http.Server{
			Handler:           opsMux(srv),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := opsSrv.Serve(opsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("ops listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The listeners are live as soon as net.Listen returns (connections
	// queue in the accept backlog), so the startup record and readiness
	// signal happen here.
	logger.Info("serving",
		"billboards", inst.Universe().NumBillboards(),
		"advertisers", inst.NumAdvertisers(),
		"addr", ln.Addr().String(),
		"ops_addr", opsBound)
	if ready != nil {
		ready <- addrs{api: ln.Addr().String(), ops: opsBound}
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight solves")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if opsSrv != nil {
		defer opsSrv.Close() // ops requests are cheap; no need to drain them
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}

func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// opsMux assembles the operational surface. It is a separate handler tree
// from the API so the profiling endpoints can be bound to a loopback-only
// listener in deployments where the API port is public.
func opsMux(srv *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", srv.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/buildinfo", handleBuildInfo)
	return mux
}

func handleBuildInfo(w http.ResponseWriter, _ *http.Request) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		http.Error(w, "build info unavailable", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, bi.String())
}

// buildInstance loads or generates the dataset and derives the market the
// daemon serves, mirroring `mroam solve`'s instance construction.
func buildInstance(city, data string, scale float64, seed uint64, alpha, p, gamma, lambda float64) (*core.Instance, error) {
	var d *dataset.Dataset
	var err error
	if data != "" {
		d, err = dataset.Load(data)
	} else {
		var cfg dataset.Config
		switch strings.ToUpper(city) {
		case "NYC":
			cfg = dataset.DefaultNYC(seed)
		case "SG":
			cfg = dataset.DefaultSG(seed)
		default:
			return nil, fmt.Errorf("unknown city %q (want NYC or SG)", city)
		}
		d, err = dataset.Generate(cfg.Scale(scale))
	}
	if err != nil {
		return nil, err
	}
	u, err := d.BuildUniverse(lambda)
	if err != nil {
		return nil, err
	}
	return market.NewInstance(u, market.Config{Alpha: alpha, P: p}, gamma,
		rng.New(seed).Derive("market"))
}
