// Command mroamload replays a seeded, fully reproducible open-loop workload
// against mroamd and reports what happened — outcome and latency
// distributions plus a counterfactual-regret summary pricing the run under
// the admission policies the server did not use (internal/workload has the
// methodology).
//
// Usage:
//
//	mroamload -target http://localhost:8080 -duration 2s -rate 50 -seed 7
//	mroamload -target http://localhost:8080 -trace-check 1 -slowest 10
//	mroamload -dry-run -trace-out trace.jsonl -seed 7
//	mroamload -mroamd ./bin/mroamd -policies shed,deadline,fair -o BENCH_serving.json
//
// Three modes:
//
//   - -target replays the workload against an already-running daemon and
//     writes one JSON report.
//   - -mroamd is bench mode: for each -policies entry it boots the given
//     mroamd binary on a loopback port with that -admission policy, replays
//     the same trace, and writes a combined report (the BENCH_serving.json
//     evidence file).
//   - -dry-run only generates the trace: with -trace-out it writes the
//     JSONL, and the report carries just the digest. Two -dry-run
//     invocations with equal flags must emit byte-identical traces — that
//     is the reproducibility contract `make load-smoke` enforces.
//
// Every replayed request carries a W3C traceparent header minted at issue
// time (IDs never enter the trace digest, so reproducibility is unaffected),
// and the report's slowest rows list their trace IDs alongside the server's
// Server-Timing phase split — each one keys into the daemon's GET
// /debug/traces/{id}. -trace-check N additionally fetches the N slowest
// served traces from the span store after the replay and fails the run
// unless their span trees validate (single request root, >= 4 lifecycle
// phases, phase durations summing to the root).
//
// The trace is fully determined by the workload flags (-seed, -duration,
// -rate, -arrival, the mix pools); replay timing and measured latencies
// vary run to run, the request sequence never does.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "mroamload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mroamload", flag.ContinueOnError)
	fs.SetOutput(out)
	seed := fs.Uint64("seed", 1, "workload seed; equal seeds generate byte-identical traces")
	duration := fs.Duration("duration", 2*time.Second, "span of the arrival process")
	rate := fs.Float64("rate", 50, "mean arrival rate in requests/second")
	arrival := fs.String("arrival", workload.ArrivalPoisson, "arrival process: poisson, burst or uniform")
	burstFactor := fs.Float64("burst-factor", workload.DefaultBurstFactor, "burst mode: peak rate multiplier")
	burstDuty := fs.Float64("burst-duty", workload.DefaultBurstDuty, "burst mode: fraction of each period spent at peak rate")
	burstPeriod := fs.Duration("burst-period", workload.DefaultBurstPeriod, "burst mode: burst cycle length")
	instances := fs.String("instances", "", "comma-separated catalog instance pool (empty = the server default instance)")
	algorithms := fs.String("algorithms", "", "comma-separated algorithm pool (empty = G-Order,G-Global,BLS)")
	deadlines := fs.String("deadlines", "", "comma-separated deadline_ms pool, 0 = no deadline (empty = no deadlines)")
	restarts := fs.Int("restarts", 2, "restart budget stamped on every request")
	solveSeeds := fs.Int("solve-seeds", workload.DefaultSolveSeeds, "distinct solver seeds in the mix")
	churnRate := fs.Float64("churn-rate", 0, "advertiser-churn PATCH entries per second interleaved into the trace (0 = none)")
	warmStart := fs.Bool("warm-start", false, "stamp warm_start on every solve so the server seeds from its incumbent plan")

	target := fs.String("target", "", "base URL of a running mroamd to replay against")
	mroamdBin := fs.String("mroamd", "", "path to an mroamd binary: bench mode, one boot per -policies entry")
	mroamdArgs := fs.String("mroamd-args", "-scale 0.02 -workers 2 -queue 4",
		"space-separated extra flags for the spawned mroamd (bench mode)")
	policies := fs.String("policies", "shed,deadline,fair", "admission policies to bench (bench mode)")
	traceOut := fs.String("trace-out", "", "write the generated trace as JSONL to this file")
	slowest := fs.Int("slowest", workload.DefaultSlowest, "slowest served requests to list in the report with their trace IDs")
	traceCheck := fs.Int("trace-check", 0, "after the replay, fetch this many of the slowest traces from the daemon's /debug/traces span store and fail unless their span trees validate (0 = skip)")
	dryRun := fs.Bool("dry-run", false, "generate (and -trace-out) the trace without issuing any request")
	outPath := fs.String("o", "", "write the JSON report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := workload.Config{
		Seed:        *seed,
		Duration:    *duration,
		Rate:        *rate,
		Arrival:     *arrival,
		BurstFactor: *burstFactor,
		BurstDuty:   *burstDuty,
		BurstPeriod: *burstPeriod,
		Instances:   splitList(*instances),
		Algorithms:  splitList(*algorithms),
		Restarts:    *restarts,
		SolveSeeds:  *solveSeeds,
		ChurnRate:   *churnRate,
		WarmStart:   *warmStart,
	}
	for _, d := range splitList(*deadlines) {
		ms, err := strconv.ParseInt(d, 10, 64)
		if err != nil {
			return fmt.Errorf("-deadlines: %w", err)
		}
		cfg.DeadlinesMS = append(cfg.DeadlinesMS, ms)
	}
	trace, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, trace); err != nil {
			return err
		}
	}

	var doc any
	switch {
	case *dryRun:
		doc = map[string]any{
			"config":       cfg,
			"requests":     len(trace),
			"trace_sha256": trace.SHA256(),
		}
	case *target != "" && *mroamdBin != "":
		return errors.New("-target and -mroamd are mutually exclusive")
	case *target != "":
		rep, err := replay(cfg, trace, *target, *slowest, *traceCheck)
		if err != nil {
			return err
		}
		doc = rep
	case *mroamdBin != "":
		bench, err := benchPolicies(cfg, trace, *mroamdBin, strings.Fields(*mroamdArgs), splitList(*policies), *slowest, *traceCheck)
		if err != nil {
			return err
		}
		doc = bench
	default:
		return errors.New("one of -target, -mroamd or -dry-run is required")
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, enc, 0o644)
	}
	_, err = out.Write(enc)
	return err
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func writeTrace(path string, trace workload.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := trace.WriteJSONL(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// replay runs the trace against one live daemon and builds its report.
// slowest resizes the report's slowest-request listing; traceCheck > 0
// additionally validates that many of the slowest traces against the
// daemon's span store while it is still reachable.
func replay(cfg workload.Config, trace workload.Trace, baseURL string, slowest, traceCheck int) (workload.Report, error) {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration+5*time.Minute)
	defer cancel()
	params, err := workload.FetchServerParams(ctx, baseURL, nil)
	if err != nil {
		return workload.Report{}, err
	}
	start := time.Now()
	results := workload.Run(ctx, baseURL, trace, nil)
	rep := workload.BuildReport(cfg, trace, results, params, time.Since(start))
	rep.Target = baseURL
	if slowest != workload.DefaultSlowest {
		rep.Slowest = workload.SlowestRows(results, slowest)
	}
	if traceCheck > 0 {
		rep.TraceChecks, err = checkTraces(ctx, baseURL, rep.Slowest, traceCheck)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// checkTraces validates the slowest rows' traces against the daemon's span
// store: each must resolve to a span tree with a single request root, at
// least four lifecycle phases, and phase durations summing to the root.
// A trace whose record has not landed in the store yet (the daemon stores it
// after flushing the response body) is retried briefly before failing.
func checkTraces(ctx context.Context, baseURL string, rows []workload.SlowRow, n int) ([]string, error) {
	if len(rows) == 0 {
		return nil, errors.New("-trace-check: the replay produced no served requests to check")
	}
	if n > len(rows) {
		n = len(rows)
	}
	checks := make([]string, 0, n)
	for _, row := range rows[:n] {
		var desc string
		var err error
		for deadline := time.Now().Add(2 * time.Second); ; {
			desc, err = workload.CheckTrace(ctx, baseURL, row.TraceID, nil, 4)
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			return checks, fmt.Errorf("-trace-check: request %d: %w", row.Index, err)
		}
		checks = append(checks, desc)
	}
	return checks, nil
}

// BenchDoc is the combined bench-mode report, recorded as
// BENCH_serving.json: the same trace replayed against one freshly booted
// daemon per admission policy.
type BenchDoc struct {
	Tool        string            `json:"tool"`
	Generated   string            `json:"generated"`
	TraceSHA256 string            `json:"trace_sha256"`
	Requests    int               `json:"requests"`
	Runs        []workload.Report `json:"runs"`
}

func benchPolicies(cfg workload.Config, trace workload.Trace, bin string, extraArgs, policies []string, slowest, traceCheck int) (BenchDoc, error) {
	doc := BenchDoc{
		Tool:        "mroamload",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		TraceSHA256: trace.SHA256(),
		Requests:    len(trace),
	}
	if len(policies) == 0 {
		return doc, errors.New("bench mode: -policies is empty")
	}
	for _, policy := range policies {
		rep, err := benchOne(cfg, trace, bin, extraArgs, policy, slowest, traceCheck)
		if err != nil {
			return doc, fmt.Errorf("policy %s: %w", policy, err)
		}
		doc.Runs = append(doc.Runs, rep)
	}
	return doc, nil
}

func benchOne(cfg workload.Config, trace workload.Trace, bin string, extraArgs []string, policy string, slowest, traceCheck int) (workload.Report, error) {
	d, err := startDaemon(bin, append([]string{"-addr", "127.0.0.1:0", "-admission", policy}, extraArgs...))
	if err != nil {
		return workload.Report{}, err
	}
	defer d.stop()
	rep, err := replay(cfg, trace, "http://"+d.addr, slowest, traceCheck)
	if err != nil {
		return workload.Report{}, err
	}
	return rep, d.stop()
}

// daemon is one spawned mroamd under bench control.
type daemon struct {
	cmd     *exec.Cmd
	addr    string
	stopped bool
	stderr  *bytes.Buffer
}

// startDaemon boots the binary and waits for its structured "serving" log
// record, which carries the bound loopback address.
func startDaemon(bin string, args []string) (*daemon, error) {
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	d := &daemon{cmd: cmd, stderr: &stderr}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			var rec struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &rec) == nil && rec.Msg == "serving" {
				select {
				case addrCh <- rec.Addr:
				default:
				}
			}
		}
		// Keep draining until the pipe closes so the daemon's logging
		// never blocks on a full pipe.
	}()

	select {
	case addr := <-addrCh:
		d.addr = addr
		return d, nil
	case <-time.After(30 * time.Second):
		d.stop()
		return nil, fmt.Errorf("daemon never logged a serving record (stderr: %s)", stderr.String())
	}
}

// stop SIGTERMs the daemon and waits for its graceful drain; it is safe to
// call twice.
func (d *daemon) stop() error {
	if d.stopped {
		return nil
	}
	d.stopped = true
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		d.cmd.Process.Kill()
		return d.cmd.Wait()
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exit: %w (stderr: %s)", err, d.stderr.String())
		}
		return nil
	case <-time.After(60 * time.Second):
		d.cmd.Process.Kill()
		<-done
		return errors.New("daemon did not drain within 60s; killed")
	}
}
