package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/workload"
)

// TestDryRunByteIdenticalTraces is the CLI-level determinism gate: two
// -dry-run invocations with the same flags must write byte-identical trace
// files and report the same digest.
func TestDryRunByteIdenticalTraces(t *testing.T) {
	dir := t.TempDir()
	argsFor := func(path string) []string {
		return []string{"-dry-run", "-seed", "9", "-duration", "1s", "-rate", "80",
			"-arrival", "burst", "-deadlines", "0,25,100", "-trace-out", path}
	}
	var out1, out2 bytes.Buffer
	if err := run(argsFor(filepath.Join(dir, "a.jsonl")), &out1); err != nil {
		t.Fatal(err)
	}
	if err := run(argsFor(filepath.Join(dir, "b.jsonl")), &out2); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dir, "a.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "b.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatalf("trace files differ (%d vs %d bytes)", len(a), len(b))
	}
	var rep1, rep2 struct {
		Requests    int    `json:"requests"`
		TraceSHA256 string `json:"trace_sha256"`
	}
	if err := json.Unmarshal(out1.Bytes(), &rep1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out2.Bytes(), &rep2); err != nil {
		t.Fatal(err)
	}
	if rep1.TraceSHA256 == "" || rep1.TraceSHA256 != rep2.TraceSHA256 {
		t.Fatalf("digest mismatch: %q vs %q", rep1.TraceSHA256, rep2.TraceSHA256)
	}
	if rep1.Requests == 0 {
		t.Fatal("dry run generated no requests")
	}
}

func TestRunFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-duration", "1s"}, &buf); err == nil {
		t.Error("missing mode accepted")
	}
	if err := run([]string{"-target", "x", "-mroamd", "y"}, &buf); err == nil {
		t.Error("-target with -mroamd accepted")
	}
	if err := run([]string{"-dry-run", "-rate", "0"}, &buf); err == nil {
		t.Error("zero rate accepted")
	}
	if err := run([]string{"-dry-run", "-deadlines", "ten"}, &buf); err == nil {
		t.Error("non-numeric deadline accepted")
	}
}

// loadInstance builds the small deterministic instance the target-mode test
// serves.
func loadInstance(tb testing.TB) *core.Instance {
	tb.Helper()
	r := rng.New(11)
	const nTraj, nBB, nAdv = 120, 16, 3
	lists := make([]coverage.List, nBB)
	for b := range lists {
		deg := 1 + r.Intn(nTraj/3+1)
		ids := make([]int32, deg)
		for i := range ids {
			ids[i] = int32(r.Intn(nTraj))
		}
		lists[b] = coverage.NewList(ids)
	}
	u, err := coverage.NewUniverse(nTraj, lists)
	if err != nil {
		tb.Fatal(err)
	}
	advs := make([]core.Advertiser, nAdv)
	for i := range advs {
		d := int64(1.1 * float64(u.TotalSupply()) / float64(nAdv))
		if d < 1 {
			d = 1
		}
		advs[i] = core.Advertiser{Demand: d, Payment: float64(d)}
	}
	inst, err := core.NewInstance(u, advs, 0.5)
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

// TestTargetModeReport replays against an in-process server and checks the
// emitted report document end to end.
func TestTargetModeReport(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.AddInstance("default", loadInstance(t)); err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{Catalog: cat, Workers: 2, QueueDepth: 2, Admission: server.AdmitDeadline})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	outFile := filepath.Join(t.TempDir(), "report.json")
	err = run([]string{"-target", ts.URL, "-seed", "3", "-duration", "400ms", "-rate", "60",
		"-algorithms", "G-Order", "-deadlines", "0,50", "-o", outFile}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep workload.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v\n%s", err, raw)
	}
	if rep.Target != ts.URL || rep.Policy != server.AdmitDeadline {
		t.Errorf("report target/policy: %q %q", rep.Target, rep.Policy)
	}
	if rep.Requests == 0 || rep.TraceSHA256 == "" {
		t.Errorf("report missing trace identity: %+v", rep)
	}
	total := 0
	for _, n := range rep.Outcomes {
		total += n
	}
	if total != rep.Requests {
		t.Errorf("outcomes sum %d, want %d", total, rep.Requests)
	}
	if len(rep.Counterfactuals) != 2 {
		t.Fatalf("%d counterfactuals, want 2", len(rep.Counterfactuals))
	}
	for _, cf := range rep.Counterfactuals {
		if cf.Baseline != server.AdmitDeadline || cf.Alternative == "" {
			t.Errorf("malformed counterfactual: %+v", cf)
		}
	}
}

// TestBenchModeEndToEnd builds the real mroamd binary, benches two
// admission policies against it, and checks the combined document — the
// same path `make load-smoke` and BENCH_serving.json use.
func TestBenchModeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots mroamd twice")
	}
	bin := filepath.Join(t.TempDir(), "mroamd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/mroamd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building mroamd: %v\n%s", err, out)
	}

	outFile := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{"-mroamd", bin, "-policies", "shed,deadline",
		"-seed", "5", "-duration", "500ms", "-rate", "40", "-algorithms", "G-Order",
		"-deadlines", "0,40", "-mroamd-args", "-scale 0.02 -workers 2 -queue 2",
		"-o", outFile}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc BenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bench doc not valid JSON: %v\n%s", err, raw)
	}
	if len(doc.Runs) != 2 {
		t.Fatalf("%d runs, want 2", len(doc.Runs))
	}
	for i, policy := range []string{"shed", "deadline"} {
		run := doc.Runs[i]
		if run.Policy != policy {
			t.Errorf("run %d policy %q, want %q", i, run.Policy, policy)
		}
		if run.TraceSHA256 != doc.TraceSHA256 {
			t.Errorf("run %d replayed a different trace", i)
		}
		if len(run.Counterfactuals) != 2 {
			t.Errorf("run %d has %d counterfactuals, want 2", i, len(run.Counterfactuals))
		}
	}
}
