package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchSmallLadder runs the harness at toy sizes with the dense
// baseline enabled: the report must decode, carry one run per size, show
// genuine compression, and the dense/compressed regrets must have matched
// (benchOne fails the run otherwise).
func TestBenchSmallLadder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	err := run([]string{"-sizes", "1500,3000", "-dense-max", "3000", "-out", path}, &sb)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("%d runs, want 2", len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if r.Corridors <= 0 || r.Corridors > r.Trajectories {
			t.Errorf("|T|=%d: corridors %d out of range", r.Trajectories, r.Corridors)
		}
		if r.Ratio < 1 {
			t.Errorf("|T|=%d: ratio %v < 1", r.Trajectories, r.Ratio)
		}
		if r.CorridorListBytes > r.DenseListBytes {
			t.Errorf("|T|=%d: corridor lists larger than dense (%d > %d)",
				r.Trajectories, r.CorridorListBytes, r.DenseListBytes)
		}
		if r.RegretMatch == nil || !*r.RegretMatch {
			t.Errorf("|T|=%d: dense baseline missing or mismatched", r.Trajectories)
		}
		if r.BuildMS <= 0 || r.CompressedSolveMS <= 0 {
			t.Errorf("|T|=%d: missing timings %+v", r.Trajectories, r)
		}
	}
}

func TestBenchBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-sizes", "0"}, &sb); err == nil {
		t.Error("size 0 accepted")
	}
	if err := run([]string{"-city", "Atlantis", "-sizes", "100", "-out", "-"}, &sb); err == nil {
		t.Error("unknown city accepted")
	}
}
