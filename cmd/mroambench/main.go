// Command mroambench measures the compressed coverage substrate end to
// end: for a ladder of trajectory counts it streams a paper-configuration
// dataset into a coverage universe, corridor-compresses it, and runs a
// 1-restart BLS solve on the compressed instance — optionally next to a
// dense baseline solve whose regret must match bit-for-bit.
//
// The JSON report (see BENCH_coverage.json at the repository root for a
// recorded run) is the evidence behind the "paper-scale instances solve
// in memory" claim: build time, compression ratio, resident bytes, and
// solve time at each rung.
//
// Usage:
//
//	mroambench -out BENCH_coverage.json                  # full ladder
//	mroambench -sizes 500000 -dense-max 0 -deadline 10m  # scale smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/dataset"
	"repro/internal/market"
	"repro/internal/rng"
)

// Run is one rung of the size ladder in the JSON report.
type Run struct {
	Trajectories int     `json:"trajectories"`
	BuildMS      float64 `json:"build_ms"`
	CompressMS   float64 `json:"compress_ms"`
	Covered      int     `json:"covered_trajectories"`
	Corridors    int     `json:"corridors"`
	Ratio        float64 `json:"compression_ratio"`
	// DenseListBytes / CorridorListBytes are the coverage-list payloads
	// (4 bytes per entry) on each substrate — the state every Counter scan
	// walks and the number the compression ratio acts on.
	DenseListBytes    int64   `json:"dense_list_bytes"`
	CorridorListBytes int64   `json:"corridor_list_bytes"`
	HeapBytes         uint64  `json:"heap_bytes"`
	Advertisers       int     `json:"advertisers"`
	CompressedSolveMS float64 `json:"compressed_solve_ms"`
	CompressedRegret  float64 `json:"compressed_regret"`
	DenseSolveMS      float64 `json:"dense_solve_ms,omitempty"`
	DenseRegret       float64 `json:"dense_regret,omitempty"`
	// RegretMatch is set (and must be true) when the dense baseline ran.
	RegretMatch *bool `json:"regret_match,omitempty"`
}

// Report is the document mroambench writes.
type Report struct {
	Bench      string  `json:"bench"`
	Go         string  `json:"go"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	City       string  `json:"city"`
	Seed       uint64  `json:"seed"`
	Lambda     float64 `json:"lambda"`
	Restarts   int     `json:"restarts"`
	Runs       []Run   `json:"runs"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mroambench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mroambench", flag.ContinueOnError)
	fs.SetOutput(out)
	sizesFlag := fs.String("sizes", "50000,500000,1700000", "comma-separated trajectory counts")
	city := fs.String("city", "NYC", "city generator (NYC or SG)")
	seed := fs.Uint64("seed", 42, "generator seed")
	restarts := fs.Int("restarts", 1, "BLS restarts per solve")
	denseMax := fs.Int("dense-max", 500_000, "largest size also solved on the dense substrate (0 disables the baseline)")
	outPath := fs.String("out", "BENCH_coverage.json", "report path (- for stdout)")
	deadline := fs.Duration("deadline", 0, "fail if the whole run exceeds this wall time (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}

	rep := Report{
		Bench:      "coverage-substrate",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		City:       strings.ToUpper(*city),
		Seed:       *seed,
		Lambda:     market.DefaultLambda,
		Restarts:   *restarts,
	}
	start := time.Now()
	for _, n := range sizes {
		r, err := benchOne(out, rep.City, n, *seed, *restarts, n <= *denseMax)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, r)
		if *deadline > 0 && time.Since(start) > *deadline {
			return fmt.Errorf("deadline %v exceeded after the %d-trajectory rung", *deadline, n)
		}
	}

	var w io.Writer = out
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *outPath != "-" {
		fmt.Fprintf(out, "wrote %s (%d runs)\n", *outPath, len(rep.Runs))
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -sizes entry %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

func benchOne(out io.Writer, city string, trajectories int, seed uint64, restarts int, withDense bool) (Run, error) {
	var cfg dataset.Config
	switch city {
	case "NYC":
		cfg = dataset.PaperNYC(seed)
	case "SG":
		cfg = dataset.PaperSG(seed)
	default:
		return Run{}, fmt.Errorf("unknown city %q (want NYC or SG)", city)
	}
	cfg.Trajectories = trajectories

	fmt.Fprintf(out, "[%s |T|=%d] streaming build...\n", city, trajectories)
	t0 := time.Now()
	streamed, err := dataset.GenerateUniverse(cfg, dataset.StreamOptions{Lambda: market.DefaultLambda})
	if err != nil {
		return Run{}, err
	}
	dense := streamed.Universe
	buildMS := msSince(t0)

	t0 = time.Now()
	compressed, stats := coverage.Compress(dense)
	compressMS := msSince(t0)

	r := Run{
		Trajectories:      trajectories,
		BuildMS:           buildMS,
		CompressMS:        compressMS,
		Covered:           stats.Covered,
		Corridors:         stats.Corridors,
		Ratio:             stats.Ratio,
		DenseListBytes:    listBytes(dense),
		CorridorListBytes: listBytes(compressed),
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.HeapBytes = ms.HeapAlloc
	fmt.Fprintf(out, "[%s |T|=%d] built in %.0fms, %d corridors (%.1fx), heap %.1f MiB\n",
		city, trajectories, buildMS, stats.Corridors, stats.Ratio, float64(r.HeapBytes)/(1<<20))

	solve := func(u *coverage.Universe) (float64, float64, int, error) {
		inst, err := catalog.Market(u, market.Config{Alpha: market.DefaultAlpha, P: market.DefaultP},
			market.DefaultGamma, rng.New(seed).Derive("market"))
		if err != nil {
			return 0, 0, 0, err
		}
		alg, err := core.AlgorithmByNameOpts("BLS", core.LocalSearchOptions{Seed: seed, Restarts: restarts})
		if err != nil {
			return 0, 0, 0, err
		}
		t := time.Now()
		plan := alg.Solve(inst)
		return msSince(t), plan.TotalRegret(), inst.NumAdvertisers(), nil
	}

	var regret float64
	r.CompressedSolveMS, regret, r.Advertisers, err = solve(compressed)
	if err != nil {
		return Run{}, err
	}
	r.CompressedRegret = regret
	fmt.Fprintf(out, "[%s |T|=%d] compressed BLS: %.0fms, regret %.1f (|A|=%d)\n",
		city, trajectories, r.CompressedSolveMS, regret, r.Advertisers)

	if withDense {
		denseMS, denseRegret, _, err := solve(dense)
		if err != nil {
			return Run{}, err
		}
		r.DenseSolveMS, r.DenseRegret = denseMS, denseRegret
		match := denseRegret == regret
		r.RegretMatch = &match
		fmt.Fprintf(out, "[%s |T|=%d] dense BLS:      %.0fms, regret %.1f (match=%v)\n",
			city, trajectories, denseMS, denseRegret, match)
		if !match {
			return Run{}, fmt.Errorf("|T|=%d: dense regret %v != compressed %v", trajectories, denseRegret, regret)
		}
	}
	return r, nil
}

func listBytes(u *coverage.Universe) int64 {
	var entries int64
	for b := 0; b < u.NumBillboards(); b++ {
		entries += int64(len(u.List(b)))
	}
	return 4 * entries
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1e3
}
