package main

import (
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI executes the CLI entry point with the given args and returns its
// stdout; fatal on unexpected error.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, sb.String())
	}
	return sb.String()
}

func TestNoArgs(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if !strings.Contains(sb.String(), "subcommands") {
		t.Error("usage not printed")
	}
}

func TestUnknownSubcommand(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"frobnicate"}, &sb); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestHelp(t *testing.T) {
	out := runCLI(t, "help")
	for _, want := range []string{"gen", "stats", "solve", "exp", "sim", "gap"} {
		if !strings.Contains(out, want) {
			t.Errorf("help missing %q", want)
		}
	}
}

func TestGenAndSolveFromData(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nyc")
	out := runCLI(t, "gen", "-city", "NYC", "-scale", "0.02", "-seed", "5", "-out", dir)
	if !strings.Contains(out, "wrote") || !strings.Contains(out, "|T|=800") {
		t.Errorf("gen output: %s", out)
	}
	if !strings.Contains(out, "corridors") || !strings.Contains(out, "compression") {
		t.Errorf("gen output missing corridor report: %s", out)
	}
	out = runCLI(t, "solve", "-data", dir, "-alg", "G-Global", "-p", "0.2", "-alpha", "0.8")
	for _, want := range []string{"G-Global on NYC", "total regret", "satisfied"} {
		if !strings.Contains(out, want) {
			t.Errorf("solve output missing %q:\n%s", want, out)
		}
	}
}

// TestSolveTrace: -trace must emit a JSONL trajectory whose improved
// events are strictly decreasing in regret and non-decreasing in time,
// bracketed by a start header and a done record that matches the printed
// summary — and tracing must not change the solve result.
func TestSolveTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	base := runCLI(t, "solve", "-scale", "0.02", "-alg", "BLS", "-restarts", "4", "-workers", "4", "-seed", "7")
	out := runCLI(t, "solve", "-scale", "0.02", "-alg", "BLS", "-restarts", "4", "-workers", "4", "-seed", "7",
		"-trace", tracePath)
	if !strings.Contains(out, "trace:") {
		t.Errorf("summary missing trace line:\n%s", out)
	}
	// The traced run must report the identical regret line.
	baseRegret := regretLine(t, base)
	if got := regretLine(t, out); got != baseRegret {
		t.Errorf("tracing changed the result: %q vs %q", got, baseRegret)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace has %d lines, want at least start + events + done:\n%s", len(lines), raw)
	}
	type event struct {
		Event     string   `json:"event"`
		TMS       *float64 `json:"t_ms"`
		Regret    *float64 `json:"regret"`
		Evals     *int64   `json:"evals"`
		Algorithm string   `json:"algorithm"`
		Restarts  *int     `json:"restarts"`
		Truncated *bool    `json:"truncated"`
	}
	var events []event
	for _, line := range lines {
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if first := events[0]; first.Event != "start" || first.Algorithm != "BLS" || first.Restarts == nil || *first.Restarts != 4 {
		t.Errorf("bad start record: %+v", first)
	}
	last := events[len(events)-1]
	if last.Event != "done" || last.Regret == nil || last.Evals == nil || *last.Evals <= 0 || last.Truncated == nil || *last.Truncated {
		t.Errorf("bad done record: %+v", last)
	}
	// The improved trajectory is monotone: strictly decreasing regret,
	// non-decreasing time, ending at the done record's final regret.
	var lastRegret, lastT float64
	improvements := 0
	restartDones := 0
	for _, ev := range events {
		switch ev.Event {
		case "improved":
			if improvements > 0 && (*ev.Regret >= lastRegret || *ev.TMS < lastT) {
				t.Errorf("non-monotone improvement: %+v after regret=%v t=%v", ev, lastRegret, lastT)
			}
			lastRegret, lastT = *ev.Regret, *ev.TMS
			improvements++
		case "restart_done":
			restartDones++
		}
	}
	if improvements == 0 {
		t.Error("trace has no improved events")
	}
	if restartDones != 5 { // greedy slot 0 + 4 restarts
		t.Errorf("trace has %d restart_done events, want 5", restartDones)
	}
	if lastRegret != *last.Regret {
		t.Errorf("final improvement %v != done regret %v", lastRegret, *last.Regret)
	}
}

// regretLine extracts the "total regret" summary line.
func regretLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "total regret") {
			return strings.TrimSpace(line)
		}
	}
	t.Fatalf("no regret line in output:\n%s", out)
	return ""
}

func TestGenRequiresOut(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"gen"}, &sb); err == nil {
		t.Fatal("gen without -out accepted")
	}
}

func TestGenRejectsBadCity(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"gen", "-city", "Atlantis", "-out", t.TempDir()}, &sb); err == nil {
		t.Fatal("bad city accepted")
	}
}

func TestStats(t *testing.T) {
	out := runCLI(t, "stats", "-scale", "0.02", "-seed", "3")
	for _, want := range []string{"Table 5", "NYC", "SG", "Figure 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q", want)
		}
	}
}

func TestSolveBadAlgorithm(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"solve", "-scale", "0.02", "-alg", "Simplex"}, &sb)
	if err == nil {
		t.Fatal("bad algorithm accepted")
	}
	// The error must name the valid choices and map to a failing exit.
	for _, want := range []string{"Simplex", "G-Order", "G-Global", "ALS", "BLS"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-algorithm error %q missing %q", err, want)
		}
	}
	if exitCode(err) != 1 {
		t.Errorf("exitCode(%v) = %d, want 1", err, exitCode(err))
	}
}

// TestExitCodes pins the process exit status contract: asking for help is
// a success, every real error a failure.
func TestExitCodes(t *testing.T) {
	if got := exitCode(nil); got != 0 {
		t.Errorf("exitCode(nil) = %d, want 0", got)
	}
	// -h on a subcommand surfaces flag.ErrHelp and must exit 0, with the
	// usage text on the subcommand's output.
	var sb strings.Builder
	err := run([]string{"solve", "-h"}, &sb)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("solve -h returned %v, want flag.ErrHelp", err)
	}
	if got := exitCode(err); got != 0 {
		t.Errorf("exitCode(solve -h) = %d, want 0", got)
	}
	if !strings.Contains(sb.String(), "-alg") {
		t.Errorf("solve -h did not print flag usage:\n%s", sb.String())
	}
	// Unknown subcommands and flag typos are failures.
	if err := run([]string{"frobnicate"}, &strings.Builder{}); exitCode(err) != 1 {
		t.Errorf("exitCode(unknown subcommand) = %d, want 1", exitCode(err))
	}
	if err := run([]string{"solve", "-no-such-flag"}, &strings.Builder{}); exitCode(err) != 1 {
		t.Errorf("exitCode(bad flag) = %d, want 1", exitCode(err))
	}
}

func TestExpSingleFigure(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "out.csv")
	out := runCLI(t, "exp", "-fig", "4", "-scale", "0.02", "-restarts", "1", "-csv", csv)
	for _, want := range []string{"fig4", "α=40%", "α=120%", "BLS"} {
		if !strings.Contains(out, want) {
			t.Errorf("exp output missing %q", want)
		}
	}
}

func TestExpRequiresFigOrAll(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"exp"}, &sb); err == nil {
		t.Fatal("exp without -fig/-all accepted")
	}
	if err := run([]string{"exp", "-fig", "99"}, &sb); err == nil {
		t.Fatal("out-of-range figure accepted")
	}
}

func TestSim(t *testing.T) {
	out := runCLI(t, "sim", "-scale", "0.03", "-days", "5", "-restarts", "1")
	for _, want := range []string{"rolling market", "G-Order", "BLS", "revenue"} {
		if !strings.Contains(out, want) {
			t.Errorf("sim output missing %q:\n%s", want, out)
		}
	}
}

func TestGap(t *testing.T) {
	out := runCLI(t, "gap", "-instances", "3", "-billboards", "6", "-restarts", "1")
	if !strings.Contains(out, "approximation gap") || !strings.Contains(out, "BLS") {
		t.Errorf("gap output:\n%s", out)
	}
	md := runCLI(t, "gap", "-instances", "3", "-billboards", "6", "-restarts", "1", "-md")
	if !strings.Contains(md, "| algorithm |") {
		t.Errorf("gap -md output:\n%s", md)
	}
}

func TestPlanSubcommand(t *testing.T) {
	planPath := filepath.Join(t.TempDir(), "plan.json")
	out := runCLI(t, "plan", "-scale", "0.03", "-restarts", "1", "-top", "3", "-out", planPath)
	for _, want := range []string{"plan written", "regret", "lower bound", "advertiser"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
	if _, err := runCLIErr("plan", "-alg", "Nope"); err == nil {
		t.Error("bad algorithm accepted")
	}
}

// TestLambdaFlagChangesResults: the influence radius λ is exposed on sim
// and plan, and widening it must change the computed numbers — otherwise
// the flag is plumbed but dead.
func TestLambdaFlagChangesResults(t *testing.T) {
	base := runCLI(t, "plan", "-scale", "0.03", "-restarts", "1", "-seed", "11")
	wide := runCLI(t, "plan", "-scale", "0.03", "-restarts", "1", "-seed", "11", "-lambda", "250")
	if base == wide {
		t.Errorf("plan output identical for λ=100m and λ=250m:\n%s", base)
	}
	// The same invocation is deterministic, so the only moving part above
	// is λ itself.
	if again := runCLI(t, "plan", "-scale", "0.03", "-restarts", "1", "-seed", "11"); again != base {
		t.Error("plan output not deterministic across runs")
	}

	simBase := runCLI(t, "sim", "-scale", "0.03", "-days", "3", "-restarts", "1")
	simWide := runCLI(t, "sim", "-scale", "0.03", "-days", "3", "-restarts", "1", "-lambda", "250")
	if simBase == simWide {
		t.Errorf("sim output identical for λ=100m and λ=250m:\n%s", simBase)
	}
}

// runCLIErr runs the CLI expecting a possible error.
func runCLIErr(args ...string) (string, error) {
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestExpSVGOutput(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "svg")
	runCLI(t, "exp", "-fig", "4", "-scale", "0.02", "-restarts", "1", "-svg", dir)
	data, err := os.ReadFile(filepath.Join(dir, "fig4.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("svg file malformed")
	}
}
