// Command mroam is the command-line interface to the MROAM reproduction:
// dataset generation, dataset statistics (Table 5 / Figure 1), single-
// instance solving, and regeneration of any figure of the paper's
// evaluation.
//
// Usage:
//
//	mroam gen   -city NYC -scale 0.25 -seed 42 -out data/nyc
//	mroam stats -scale 0.25 -seed 42
//	mroam solve -city NYC -scale 0.25 -alpha 1.0 -p 0.05 -alg BLS
//	mroam exp   -fig 4 -scale 0.25 -restarts 5
//	mroam exp   -all -scale 0.25 -csv results.csv
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/simulate"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "mroam:", err)
	}
	os.Exit(exitCode(err))
}

// exitCode maps run's outcome to the process exit status. -h/-help on any
// subcommand surfaces as flag.ErrHelp and is a successful exit (the user
// asked for the usage text and got it); every other error is a failure.
func exitCode(err error) int {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return 0
	}
	return 1
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		usage(out)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:], out)
	case "stats":
		return cmdStats(args[1:], out)
	case "solve":
		return cmdSolve(args[1:], out)
	case "exp":
		return cmdExp(args[1:], out)
	case "sim":
		return cmdSim(args[1:], out)
	case "gap":
		return cmdGap(args[1:], out)
	case "plan":
		return cmdPlan(args[1:], out)
	case "help", "-h", "--help":
		usage(out)
		return nil
	default:
		usage(out)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(out io.Writer) {
	fmt.Fprintln(out, `mroam — Minimizing the Regret of an Influence Provider (SIGMOD 2021 reproduction)

subcommands:
  gen    generate a synthetic city dataset and save it to a directory
  stats  print Table 5 and the Figure 1 distribution curves
  solve  solve one MROAM instance and print the plan summary
  exp    regenerate a figure (-fig N) or the whole evaluation (-all)
  sim    simulate a rolling daily market under each allocation policy
  gap    measure heuristics against the exact optimum on small instances
  plan   solve one instance, write the plan JSON, and print the audit
  help   show this message`)
}

// specDefaults is DefaultSpec with a subcommand-specific scale, the only
// knob whose default differs between subcommands.
func specDefaults(scale float64) catalog.Spec {
	s := catalog.DefaultSpec()
	s.Scale = scale
	return s
}

func cmdGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	fs.SetOutput(out)
	spec := catalog.Bind(fs, catalog.FieldDataset|catalog.FieldLambda|catalog.FieldModel, specDefaults(1.0))
	outDir := fs.String("out", "", "output directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir == "" {
		return fmt.Errorf("gen: -out is required")
	}
	s := spec.Spec().Normalized()
	if err := s.Validate(); err != nil {
		return err
	}
	d, err := catalog.BuildDataset(s)
	if err != nil {
		return err
	}
	if err := d.Save(*outDir); err != nil {
		return err
	}
	row := d.Table5()
	fmt.Fprintf(out, "wrote %s: |T|=%d |U|=%d avgDist=%.2fkm avgTime=%.0fs\n",
		*outDir, row.NumTraj, row.NumBillboards, row.AvgDistanceKM, row.AvgTravelSec)
	// Report the corridor structure at λ — the compression the catalog will
	// serve this dataset on (see coverage.Compress).
	u, err := d.BuildUniverse(s.Lambda)
	if err != nil {
		return err
	}
	_, stats := coverage.Compress(u)
	fmt.Fprintf(out, "coverage at λ=%.0fm: %d corridors for %d covered trajectories (%.1fx compression)\n",
		s.Lambda, stats.Corridors, stats.Covered, stats.Ratio)
	if s.ModelKind() == core.ModelZonal {
		// The dataset itself is model-free (the model binds at instance
		// build), but previewing the partition here shows how the caps
		// would slice this geography.
		_, zones := catalog.ZonePartition(d.Billboards.Locations(), s.Model.ZoneMeters)
		fmt.Fprintf(out, "zonal partition at %.0fm cells: %d occupied zones (cap %d per advertiser per zone)\n",
			s.Model.ZoneMeters, zones, s.Model.ZoneCap)
	}
	return nil
}

func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	fs.SetOutput(out)
	scale := fs.Float64("scale", 0.25, "fraction of the default dataset scale")
	seed := fs.Uint64("seed", 42, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := experiment.NewRunner(experiment.Config{Scale: *scale, Seed: *seed})

	rows, err := r.Table5()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Table 5: dataset statistics")
	tbl := report.NewTable("dataset", "|T|", "|U|", "AvgDistance", "AvgTravelTime")
	for _, row := range rows {
		tbl.AddRow(row.Name,
			fmt.Sprintf("%d", row.NumTraj),
			fmt.Sprintf("%d", row.NumBillboards),
			fmt.Sprintf("%.1fkm", row.AvgDistanceKM),
			fmt.Sprintf("%.0fs", row.AvgTravelSec))
	}
	if err := tbl.Write(out); err != nil {
		return err
	}

	series, err := r.Figure1()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\nFigure 1: influence and impression distributions (λ=100m)")
	dist := report.NewTable("city", "fraction", "norm influence (1a)", "impressions (1b)")
	for _, s := range series {
		for i, f := range s.SampleFractions {
			dist.AddRow(s.City.String(),
				fmt.Sprintf("%.0f%%", f*100),
				fmt.Sprintf("%.3f", s.InfluenceCurve[i]),
				fmt.Sprintf("%.3f", s.ImpressionCurve[i]))
		}
	}
	return dist.Write(out)
}

func cmdSolve(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	fs.SetOutput(out)
	spec := catalog.Bind(fs, catalog.FieldsAll, specDefaults(0.25))
	algName := fs.String("alg", "BLS", "algorithm: G-Order, G-Global, ALS or BLS")
	restarts := fs.Int("restarts", core.DefaultRestarts, "local search restarts")
	workers := fs.Int("workers", 0, "goroutines for the restart loop (0 = GOMAXPROCS); results are identical for any value")
	tracePath := fs.String("trace", "", "write the solve's regret-vs-time trajectory to this file as JSONL")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := spec.Spec().Normalized()
	inst, info, err := catalog.Build(s)
	if err != nil {
		return err
	}
	opts := core.LocalSearchOptions{Seed: s.Seed, Restarts: *restarts, Workers: *workers}
	var tw *obs.TraceWriter
	var traceBuf *bufio.Writer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		traceBuf = bufio.NewWriter(f)
		tw = obs.NewTraceWriter(traceBuf)
		opts.Tracer = tw
	}
	alg, err := core.AlgorithmByNameOpts(*algName, opts)
	if err != nil {
		return err
	}

	var m experiment.Metrics
	if tw != nil {
		// Tracing runs through the anytime engine so the done record can
		// carry the truncation flag and aggregated cache counters; the
		// result is bit-identical to the plain alg.Solve path.
		tw.Start(alg.Name(), s.Seed, *restarts)
		start := time.Now()
		res := core.SolveAnytime(context.Background(), alg, inst)
		elapsed := time.Since(start)
		if err := tw.Done(res, elapsed); err != nil {
			return fmt.Errorf("trace %s: %w", *tracePath, err)
		}
		if err := traceBuf.Flush(); err != nil {
			return fmt.Errorf("trace %s: %w", *tracePath, err)
		}
		excess, unsat := res.Plan.Breakdown()
		m = experiment.Metrics{
			Algorithm:      alg.Name(),
			TotalRegret:    res.TotalRegret,
			Excess:         excess,
			Unsatisfied:    unsat,
			SatisfiedCount: res.Plan.SatisfiedCount(),
			NumAdvertisers: inst.NumAdvertisers(),
			Runtime:        elapsed,
			Evals:          res.Evals,
		}
	} else {
		m = experiment.Run(inst, alg)
	}
	fmt.Fprintf(out, "%s on %s (%s, |A|=%d, |U|=%d, |T|=%d)\n",
		alg.Name(), info.City, s.Describe(),
		info.Advertisers, info.Billboards, info.Trajectories)
	fmt.Fprintf(out, "  total regret:        %.1f\n", m.TotalRegret)
	fmt.Fprintf(out, "  excessive influence: %.1f (%.1f%%)\n", m.Excess, m.ExcessPct())
	fmt.Fprintf(out, "  unsatisfied penalty: %.1f (%.1f%%)\n", m.Unsatisfied, m.UnsatisfiedPct())
	fmt.Fprintf(out, "  satisfied:           %d/%d advertisers\n", m.SatisfiedCount, m.NumAdvertisers)
	fmt.Fprintf(out, "  runtime:             %v (%d marginal evaluations)\n", m.Runtime, m.Evals)
	if tw != nil {
		fmt.Fprintf(out, "  trace:               %s (%d incumbent improvements)\n", *tracePath, tw.Improvements())
	}
	return nil
}

func cmdExp(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("exp", flag.ContinueOnError)
	fs.SetOutput(out)
	figNum := fs.Int("fig", 0, "figure number to regenerate (2-12)")
	all := fs.Bool("all", false, "regenerate every figure")
	scale := fs.Float64("scale", 0.25, "fraction of the default dataset scale")
	seed := fs.Uint64("seed", 42, "seed")
	restarts := fs.Int("restarts", 3, "local search restarts")
	parallel := fs.Int("parallel", 1, "run a figure's points with this many workers (regret figures only)")
	csvPath := fs.String("csv", "", "also write raw numbers as CSV to this file")
	svgDir := fs.String("svg", "", "also write one SVG chart per figure into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*all && (*figNum < 2 || *figNum > 12) {
		return fmt.Errorf("exp: pass -fig N (2-12) or -all")
	}
	r := experiment.NewRunner(experiment.Config{Scale: *scale, Seed: *seed, Restarts: *restarts, Parallel: *parallel})

	nums := []int{*figNum}
	if *all {
		nums = []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	}

	var csvFile *os.File
	if *csvPath != "" {
		var err error
		csvFile, err = os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer csvFile.Close()
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
	}

	for _, num := range nums {
		figs, err := r.Figure(num)
		if err != nil {
			return err
		}
		for _, fig := range figs {
			var werr error
			if num == 8 || num == 9 {
				werr = report.WriteRuntimeFigure(out, fig)
			} else {
				werr = report.WriteFigure(out, fig)
			}
			if werr != nil {
				return werr
			}
			fmt.Fprintln(out)
			if csvFile != nil {
				if err := report.WriteFigureCSV(csvFile, fig); err != nil {
					return err
				}
			}
			if *svgDir != "" && num != 8 && num != 9 {
				f, err := os.Create(filepath.Join(*svgDir, fig.ID+".svg"))
				if err != nil {
					return err
				}
				if err := report.WriteFigureSVG(f, fig); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func cmdSim(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	fs.SetOutput(out)
	spec := catalog.Bind(fs, catalog.FieldDataset|catalog.FieldData|catalog.FieldLambda|catalog.FieldModel, specDefaults(0.12))
	days := fs.Int("days", 30, "simulation horizon in days")
	arrivals := fs.Int("arrivals", 4, "expected proposals per day")
	restarts := fs.Int("restarts", 2, "local search restarts per daily allocation")
	churn := fs.Bool("churn", false, "run the churn replay instead: one market mutates daily and each day is re-solved cold vs warm-started")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := spec.Spec().Normalized()
	if err := s.Validate(); err != nil {
		return err
	}
	d, err := catalog.BuildDataset(s)
	if err != nil {
		return err
	}
	u, err := d.BuildUniverse(s.Lambda)
	if err != nil {
		return err
	}
	if *churn {
		return runChurnSim(out, s, d, u, *days, *arrivals, *restarts)
	}
	cfg := simulate.Config{
		Days:             *days,
		ArrivalsPerDay:   *arrivals,
		ContractMinDays:  3,
		ContractMaxDays:  7,
		DemandFractionLo: 0.08,
		DemandFractionHi: 0.22,
		Gamma:            market.DefaultGamma,
		Seed:             s.Seed,
	}
	banner := ""
	if s.ModelKind() == core.ModelZonal {
		// The simulator builds instances straight from the dataset's
		// universe, so it derives its own zone partition with the same
		// geometry the catalog would use.
		zoneOf, zones := catalog.ZonePartition(d.Billboards.Locations(), s.Model.ZoneMeters)
		cfg.ZoneOf, cfg.ZoneCap = zoneOf, s.Model.ZoneCap
		banner = fmt.Sprintf(", zonal: %d zones at %.0fm, cap %d", zones, s.Model.ZoneMeters, s.Model.ZoneCap)
	}
	results, err := simulate.ComparePolicies(u, core.PaperAlgorithms(s.Seed, *restarts), cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d-day rolling market on %s (%d billboards, %d trips%s)\n",
		*days, d.Config.City, u.NumBillboards(), u.NumTrajectories(), banner)
	tbl := report.NewTable("policy", "revenue", "cum regret", "satisfied", "proposals")
	for _, name := range []string{"G-Order", "G-Global", "ALS", "BLS"} {
		r := results[name]
		tbl.AddRow(name,
			fmt.Sprintf("%.0f", r.TotalRevenue),
			fmt.Sprintf("%.0f", r.TotalRegret),
			fmt.Sprintf("%d", r.TotalSatisfied),
			fmt.Sprintf("%d", r.TotalProposals))
	}
	return tbl.Write(out)
}

// runChurnSim is the -churn mode of mroam sim: a fixed-universe market of
// 2·arrivals advertisers mutates every day (one leaves, one revises, one
// arrives) and each mutated market is solved twice — cold from scratch and
// warm-started from the previous day's plan — so the table shows what the
// daemon's PATCH + "warm_start" path saves over nightly full re-solves.
func runChurnSim(out io.Writer, s catalog.Spec, d *dataset.Dataset, u *coverage.Universe, days, arrivals, restarts int) error {
	cfg := simulate.ChurnConfig{
		Days:             days,
		Advertisers:      2 * arrivals,
		DemandFractionLo: 0.08,
		DemandFractionHi: 0.22,
		Gamma:            market.DefaultGamma,
		Seed:             s.Seed,
		Restarts:         restarts,
	}
	banner := ""
	if s.ModelKind() == core.ModelZonal {
		zoneOf, zones := catalog.ZonePartition(d.Billboards.Locations(), s.Model.ZoneMeters)
		cfg.ZoneOf, cfg.ZoneCap = zoneOf, s.Model.ZoneCap
		banner = fmt.Sprintf(", zonal: %d zones at %.0fm, cap %d", zones, s.Model.ZoneMeters, s.Model.ZoneCap)
	}
	res, err := simulate.ChurnReplay(u, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d-day churn replay on %s (%d advertisers, %d billboards, BLS ×%d restarts%s)\n",
		days, d.Config.City, cfg.Advertisers, u.NumBillboards(), cfg.Restarts, banner)
	fmt.Fprintf(out, "seed solve: regret %.1f (%d evals); each day: 1 removed, 1 revised, 1 added\n",
		res.SeedRegret, res.SeedEvals)
	tbl := report.NewTable("day", "cold regret", "warm regret", "cold evals", "warm evals", "frozen", "cold ms", "warm ms")
	for _, day := range res.Days {
		tbl.AddRow(
			fmt.Sprintf("%d", day.Day),
			fmt.Sprintf("%.1f", day.ColdRegret),
			fmt.Sprintf("%.1f", day.WarmRegret),
			fmt.Sprintf("%d", day.ColdEvals),
			fmt.Sprintf("%d", day.WarmEvals),
			fmt.Sprintf("%d", day.Frozen),
			fmt.Sprintf("%.1f", day.ColdMillis),
			fmt.Sprintf("%.1f", day.WarmMillis))
	}
	if err := tbl.Write(out); err != nil {
		return err
	}
	pct := 0.0
	if res.ColdEvals > 0 {
		pct = 100 * float64(res.WarmEvals) / float64(res.ColdEvals)
	}
	fmt.Fprintf(out, "warm-start total: %d evals vs %d cold (%.0f%%), %.1fms vs %.1fms; regret matched cold on %d/%d days\n",
		res.WarmEvals, res.ColdEvals, pct, res.WarmMillis, res.ColdMillis, res.MatchedDays, len(res.Days))
	return nil
}

func cmdGap(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gap", flag.ContinueOnError)
	fs.SetOutput(out)
	instances := fs.Int("instances", 20, "number of random small instances")
	billboards := fs.Int("billboards", 8, "billboards per instance (exact-solvable)")
	advertisers := fs.Int("advertisers", 2, "advertisers per instance")
	seed := fs.Uint64("seed", 42, "seed")
	restarts := fs.Int("restarts", 3, "local search restarts")
	md := fs.Bool("md", false, "emit a markdown table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiment.ApproximationGap(experiment.GapConfig{
		Instances:   *instances,
		Billboards:  *billboards,
		Advertisers: *advertisers,
		Seed:        *seed,
		Restarts:    *restarts,
	})
	if err != nil {
		return err
	}
	if *md {
		return report.WriteGapMarkdown(out, rows)
	}
	fmt.Fprintf(out, "approximation gap vs exact optimum (%d instances, %d billboards, %d advertisers)\n",
		*instances, *billboards, *advertisers)
	tbl := report.NewTable("algorithm", "mean ratio", "worst ratio", "exact hits")
	for _, row := range rows {
		tbl.AddRow(row.Algorithm,
			fmt.Sprintf("%.3f", row.MeanRatio),
			fmt.Sprintf("%.3f", row.WorstRatio),
			fmt.Sprintf("%d/%d", row.OptimalHits, row.Instances))
	}
	return tbl.Write(out)
}

func cmdPlan(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	fs.SetOutput(out)
	spec := catalog.Bind(fs, catalog.FieldsAll, specDefaults(0.12))
	algName := fs.String("alg", "BLS", "algorithm")
	restarts := fs.Int("restarts", 3, "local search restarts")
	workers := fs.Int("workers", 0, "goroutines for the restart loop (0 = GOMAXPROCS); results are identical for any value")
	outPath := fs.String("out", "", "write the plan JSON to this file")
	topN := fs.Int("top", 10, "audit rows to print (by descending regret)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := spec.Spec().Normalized()
	inst, _, err := catalog.Build(s)
	if err != nil {
		return err
	}
	alg, err := core.AlgorithmByNameOpts(*algName, core.LocalSearchOptions{
		Seed: s.Seed, Restarts: *restarts, Workers: *workers,
	})
	if err != nil {
		return err
	}
	plan := alg.Solve(inst)
	// Validate consults the instance's model, so this is the variant
	// feasibility check (e.g. zonal per-zone caps) as well as the
	// structural one — a solver returning an infeasible plan is a bug
	// worth failing loudly on.
	if err := plan.Validate(); err != nil {
		return fmt.Errorf("%s returned an infeasible plan: %w", alg.Name(), err)
	}
	if zm, ok := inst.Model().(*core.ZonalModel); ok {
		fmt.Fprintf(out, "zonal caps hold: cap %d over %d zones\n", zm.Cap(), zm.Zones())
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := core.WritePlan(f, plan); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "plan written to %s\n", *outPath)
	}

	excess, unsat := plan.Breakdown()
	fmt.Fprintf(out, "%s: regret %.1f (waste %.1f, unsatisfied %.1f), revenue %.1f of %.1f, satisfied %d/%d\n",
		alg.Name(), plan.TotalRegret(), excess, unsat,
		core.Revenue(plan), inst.TotalPayment(),
		plan.SatisfiedCount(), inst.NumAdvertisers())
	fmt.Fprintf(out, "fractional lower bound on optimal regret: %.1f\n\n", core.LowerBound(inst))

	rows := core.Audit(plan)
	if *topN < len(rows) {
		rows = rows[:*topN]
	}
	tbl := report.NewTable("advertiser", "demand", "achieved", "billboards", "satisfied", "regret")
	for _, row := range rows {
		tbl.AddRow(
			fmt.Sprintf("%d", row.Advertiser),
			fmt.Sprintf("%d", row.Demand),
			fmt.Sprintf("%d (%.0f%%)", row.Achieved, row.Fulfillment*100),
			fmt.Sprintf("%d", row.Billboards),
			fmt.Sprintf("%v", row.Satisfied),
			fmt.Sprintf("%.1f", row.Regret))
	}
	return tbl.Write(out)
}
